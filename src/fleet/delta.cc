#include "fleet/delta.h"

#include <cstring>
#include <unordered_map>
#include <vector>

#include "util/crc32.h"

namespace snip {
namespace fleet {

namespace {

/** Match granularity: runs shorter than this are carried as
 *  literals. Small enough to catch the SoA column fragments that
 *  survive an arena re-layout, large enough that a hash hit is
 *  almost always a real match. */
constexpr size_t kBlock = 32;

/** Op kinds on the wire. */
constexpr uint8_t kOpCopy = 0;
constexpr uint8_t kOpInsert = 1;

/** Minimum encoded op size (kind + len), to sanity-bound nops. */
constexpr uint64_t kMinOpBytes = 9;

/** Rolling polynomial hash over a kBlock window. */
struct RollingHash {
    static constexpr uint64_t kMul = 0x9e3779b185ebca87ULL;

    /** kMul^(kBlock-1), for removing the outgoing byte. */
    static uint64_t
    outMul()
    {
        uint64_t m = 1;
        for (size_t i = 1; i < kBlock; ++i)
            m *= kMul;
        return m;
    }

    static uint64_t
    of(const uint8_t *p)
    {
        uint64_t h = 0;
        for (size_t i = 0; i < kBlock; ++i)
            h = h * kMul + p[i];
        return h;
    }

    static uint64_t
    roll(uint64_t h, uint8_t out, uint8_t in, uint64_t out_mul)
    {
        return (h - out * out_mul) * kMul + in;
    }
};

struct Op {
    uint8_t kind;
    uint64_t src_off;  // copy only
    uint64_t len;      // copy: source run; insert: literal length
    uint64_t tgt_off;  // insert only: literal start in tgt
};

void
emitInsert(std::vector<Op> &ops, uint64_t tgt_off, uint64_t len)
{
    if (len == 0)
        return;
    // Coalesce with a directly preceding literal.
    if (!ops.empty() && ops.back().kind == kOpInsert &&
        ops.back().tgt_off + ops.back().len == tgt_off) {
        ops.back().len += len;
        return;
    }
    ops.push_back(Op{kOpInsert, 0, len, tgt_off});
}

void
emitCopy(std::vector<Op> &ops, uint64_t src_off, uint64_t len)
{
    if (!ops.empty() && ops.back().kind == kOpCopy &&
        ops.back().src_off + ops.back().len == src_off) {
        ops.back().len += len;
        return;
    }
    ops.push_back(Op{kOpCopy, src_off, len, 0});
}

}  // namespace

void
diffBytes(std::span<const uint8_t> src, std::span<const uint8_t> tgt,
          util::ByteBuffer &out)
{
    // Greedy block matching: index every aligned source block by its
    // rolling hash (first occurrence wins, ties broken by position —
    // fully deterministic), then slide a window over the target and
    // turn verified hits into maximal copy runs.
    std::unordered_map<uint64_t, uint64_t> index;
    if (src.size() >= kBlock) {
        index.reserve(src.size() / kBlock * 2);
        for (size_t off = 0; off + kBlock <= src.size();
             off += kBlock)
            index.emplace(RollingHash::of(src.data() + off), off);
    }

    std::vector<Op> ops;
    const uint64_t out_mul = RollingHash::outMul();
    size_t pos = 0;       // target scan cursor
    size_t lit_start = 0; // pending literal [lit_start, pos)
    uint64_t h = tgt.size() >= kBlock ? RollingHash::of(tgt.data())
                                      : 0;
    while (pos + kBlock <= tgt.size()) {
        auto it = index.find(h);
        bool matched = false;
        if (it != index.end()) {
            size_t so = it->second;
            if (std::memcmp(src.data() + so, tgt.data() + pos,
                            kBlock) == 0) {
                // Verified hit: grow it forward as far as the bytes
                // agree, and backward into the pending literal.
                size_t len = kBlock;
                while (so + len < src.size() &&
                       pos + len < tgt.size() &&
                       src[so + len] == tgt[pos + len])
                    ++len;
                while (so > 0 && pos > lit_start &&
                       src[so - 1] == tgt[pos - 1]) {
                    --so;
                    --pos;
                    ++len;
                }
                emitInsert(ops, lit_start, pos - lit_start);
                emitCopy(ops, so, len);
                pos += len;
                lit_start = pos;
                if (pos + kBlock <= tgt.size())
                    h = RollingHash::of(tgt.data() + pos);
                matched = true;
            }
        }
        if (!matched) {
            if (pos + kBlock < tgt.size())
                h = RollingHash::roll(h, tgt[pos], tgt[pos + kBlock],
                                      out_mul);
            ++pos;
        }
    }
    emitInsert(ops, lit_start, tgt.size() - lit_start);

    util::ByteBuffer payload;
    payload.putU64(src.size());
    payload.putU32(util::crc32(src.data(), src.size()));
    payload.putU64(tgt.size());
    payload.putU32(util::crc32(tgt.data(), tgt.size()));
    payload.putU32(static_cast<uint32_t>(ops.size()));
    for (const Op &op : ops) {
        payload.putU8(op.kind);
        if (op.kind == kOpCopy) {
            payload.putU64(op.src_off);
            payload.putU64(op.len);
        } else {
            payload.putU64(op.len);
            payload.putBytes(tgt.data() + op.tgt_off, op.len);
        }
    }

    out.putU32(kPatchMagic);
    out.putU32(kPatchVersion);
    out.putU32(static_cast<uint32_t>(payload.size()));
    out.putBytes(payload.data().data(), payload.size());
    out.putU32(util::crc32(payload.data().data(), payload.size()));
}

namespace {

/**
 * Validate the envelope and decode the fixed payload head. Leaves
 * the reader positioned at the op stream and returns the payload end
 * offset via @p payload_end.
 */
util::Status
openPatch(util::ByteBuffer &patch, util::ByteReader &r,
          PatchInfo *info, size_t *payload_end, uint32_t *nops)
{
    patch.rewind();
    uint32_t magic = r.u32();
    uint32_t version = r.u32();
    uint32_t payload_len = r.u32();
    if (!r.ok())
        return util::Status::Error("patch: truncated header");
    if (magic != kPatchMagic)
        return util::Status::Errorf("patch: bad magic 0x%08x", magic);
    if (version != kPatchVersion)
        return util::Status::Errorf(
            "patch: unsupported version %u (expected %u)", version,
            kPatchVersion);
    if (patch.remaining() != payload_len + 4ull)
        return util::Status::Errorf(
            "patch: payload length %u does not match patch size",
            payload_len);
    const uint8_t *payload = patch.data().data() + patch.cursor();
    const uint8_t *footer = payload + payload_len;
    uint32_t stored = static_cast<uint32_t>(footer[0]) |
                      static_cast<uint32_t>(footer[1]) << 8 |
                      static_cast<uint32_t>(footer[2]) << 16 |
                      static_cast<uint32_t>(footer[3]) << 24;
    if (util::crc32(payload, payload_len) != stored)
        return util::Status::Errorf(
            "patch: CRC mismatch (stored 0x%08x): corrupt patch",
            stored);
    *payload_end = patch.cursor() + payload_len;

    info->src_bytes = r.u64();
    info->src_crc = r.u32();
    info->tgt_bytes = r.u64();
    info->tgt_crc = r.u32();
    *nops = r.u32();
    if (!r.ok() || !r.fits(*nops, kMinOpBytes))
        return util::Status::Error("patch: truncated payload head");
    return util::Status::Ok();
}

}  // namespace

util::Status
inspectPatch(util::ByteBuffer &patch, PatchInfo *info)
{
    util::ByteReader r(patch);
    size_t payload_end = 0;
    uint32_t nops = 0;
    util::Status st = openPatch(patch, r, info, &payload_end, &nops);
    if (!st.ok())
        return st;
    for (uint32_t i = 0; i < nops; ++i) {
        uint8_t kind = r.u8();
        if (kind == kOpCopy) {
            r.u64();
            uint64_t len = r.u64();
            if (!r.ok())
                return util::Status::Error("patch: truncated op");
            ++info->copy_ops;
            info->copied_bytes += len;
        } else if (kind == kOpInsert) {
            uint64_t len = r.u64();
            r.skip(len);
            if (!r.ok())
                return util::Status::Error("patch: truncated op");
            ++info->insert_ops;
            info->inserted_bytes += len;
        } else {
            return util::Status::Errorf("patch: bad op kind %u",
                                        kind);
        }
    }
    if (patch.cursor() != payload_end)
        return util::Status::Error("patch: trailing payload bytes");
    return util::Status::Ok();
}

util::Result<util::ByteBuffer>
applyPatch(std::span<const uint8_t> src, util::ByteBuffer &patch)
{
    util::ByteReader r(patch);
    PatchInfo info;
    size_t payload_end = 0;
    uint32_t nops = 0;
    util::Status st = openPatch(patch, r, &info, &payload_end, &nops);
    if (!st.ok())
        return st;

    if (info.src_bytes != src.size() ||
        info.src_crc != util::crc32(src.data(), src.size()))
        return util::Status::Error(
            "patch: source does not match the pinned base "
            "(stale or corrupt device copy)");

    util::ByteBuffer out;
    for (uint32_t i = 0; i < nops; ++i) {
        uint8_t kind = r.u8();
        if (kind == kOpCopy) {
            uint64_t off = r.u64();
            uint64_t len = r.u64();
            if (!r.ok())
                return util::Status::Error("patch: truncated op");
            if (off > src.size() || len > src.size() - off)
                return util::Status::Error(
                    "patch: copy op out of source bounds");
            if (out.size() + len > info.tgt_bytes)
                return util::Status::Error(
                    "patch: ops overrun the pinned target length");
            out.putBytes(src.data() + off, len);
        } else if (kind == kOpInsert) {
            uint64_t len = r.u64();
            if (!r.ok() || len > patch.remaining())
                return util::Status::Error("patch: truncated op");
            if (out.size() + len > info.tgt_bytes)
                return util::Status::Error(
                    "patch: ops overrun the pinned target length");
            out.putBytes(patch.data().data() + patch.cursor(), len);
            r.skip(len);
        } else {
            return util::Status::Errorf("patch: bad op kind %u",
                                        kind);
        }
    }
    if (!r.ok())
        return util::Status::Error("patch: truncated op stream");
    if (patch.cursor() != payload_end)
        return util::Status::Error("patch: trailing payload bytes");
    if (out.size() != info.tgt_bytes)
        return util::Status::Errorf(
            "patch: reconstruction is %zu bytes, pinned target is "
            "%llu",
            out.size(),
            static_cast<unsigned long long>(info.tgt_bytes));
    if (util::crc32(out.data().data(), out.size()) != info.tgt_crc)
        return util::Status::Error(
            "patch: reconstruction fails the pinned target CRC");
    return out;
}

util::ByteBuffer
fetchWithDelta(std::span<const uint8_t> base, util::ByteBuffer &patch,
               const util::ByteBuffer &full, bool *used_delta)
{
    util::Result<util::ByteBuffer> res = applyPatch(base, patch);
    if (used_delta)
        *used_delta = res.ok();
    if (res.ok())
        return std::move(res.value());
    util::ByteBuffer copy;
    copy.putBytes(full.data().data(), full.size());
    return copy;
}

}  // namespace fleet
}  // namespace snip
