/**
 * @file
 * Sharded federated aggregation. The core federated backend merges N
 * per-device upload payloads through one serial MemoTable::mergeFrom
 * chain; at fleet scale that chain is the backend's critical path.
 * This layer partitions the uploads into K contiguous shards, unions
 * each shard into its own MemoTable in parallel (util::parallelFor),
 * then merges the shard tables tree-wise (adjacent pairs per level,
 * left-to-right order preserved).
 *
 * Equivalence contract: the aggregate is *bitwise identical* (frozen
 * arena bytes) to the serial chain at any shard count. The argument:
 * mergeFrom visits entries in the canonical visitEntries order and
 * inserts first-seen-wins, i.e. each bucket's entry list is the
 * order-preserving dedup of the concatenated upload entry streams —
 * and dedup(concat(dedup(A), dedup(B))) == dedup(concat(A, B)), so
 * any merge tree that preserves the uploads' left-to-right order
 * yields the same canonical entry order, and freeze() is a pure
 * function of that order. tests/fleet_test.cc enforces this at shard
 * counts {1, 2, 8}.
 *
 * Corrupt uploads are dropped exactly as the serial chain drops
 * them: that device contributes nothing this round, nothing fails.
 */

#ifndef SNIP_FLEET_AGGREGATE_H
#define SNIP_FLEET_AGGREGATE_H

#include <span>

#include "core/memo_table.h"
#include "util/bytes.h"

namespace snip {

namespace obs {
class Registry;
}  // namespace obs

namespace fleet {

/** Aggregation knobs. */
struct AggregateConfig {
    /** Upload shards unioned in parallel (clamped to [1, uploads]). */
    size_t shards = 8;
    /** parallelFor workers (0 = SNIP_THREADS / all cores). */
    unsigned threads = 0;
    /** Optional `fleet.aggregate.*` metrics sink. */
    obs::Registry *obs = nullptr;
};

/** What the aggregation pass consumed. */
struct AggregateStats {
    size_t uploads = 0;
    /** Uploads rejected by integrity checks and dropped. */
    size_t dropped = 0;
    /** Shards actually used after clamping. */
    size_t shards = 0;
    /** Tree-merge levels above the shard unions. */
    size_t merge_levels = 0;
};

/**
 * Decode the serialized per-device upload payloads (SNPM packages,
 * as produced by the federated device loop) and union their tables
 * into @p dest. @p dest's selected sets drive the re-projection,
 * exactly as in the serial chain; @p uploads are read with a cursor,
 * hence the mutable span. Returns what was consumed/dropped.
 */
AggregateStats aggregateUploads(core::MemoTable &dest,
                                std::span<util::ByteBuffer> uploads,
                                const AggregateConfig &cfg = {});

}  // namespace fleet
}  // namespace snip

#endif  // SNIP_FLEET_AGGREGATE_H
