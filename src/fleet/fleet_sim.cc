#include "fleet/fleet_sim.h"

#include <algorithm>
#include <cmath>

#include "core/model_codec.h"
#include "core/simulation.h"
#include "fleet/delta.h"
#include "games/registry.h"
#include "obs/metrics.h"
#include "trace/recorder.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace snip {
namespace fleet {

std::vector<CohortSpec>
defaultCohorts()
{
    // Stable ring updates every epoch (holds the head's parent),
    // slower rings lag deeper, and a fresh-install sliver holds
    // nothing and must full-fetch.
    return {
        {"stable", 0.50, 1},
        {"slow", 0.30, 2},
        {"lagging", 0.15, 3},
        {"fresh", 0.05, 1000000},
    };
}

namespace {

/** Hit rate of one stale package over an eval session (0 = no
 *  deployable model: every lookup misses by definition). */
double
staleHitRate(const FleetSimConfig &cfg,
             const ModelVersion *base, uint64_t salt)
{
    if (!base)
        return 0.0;
    auto pkg = std::make_shared<util::ByteBuffer>();
    pkg->putBytes(base->package->data().data(),
                  base->package->size());
    util::Result<core::SnipModel> deployed =
        core::deployModel(std::move(pkg));
    if (!deployed.ok()) {
        util::warn("fleet: stale version fails deploy: %s",
                   deployed.status().message().c_str());
        return 0.0;
    }
    auto game = games::makeGame(cfg.game);
    obs::Registry session_obs;
    core::SimulationConfig scfg;
    scfg.duration_s = cfg.eval_seconds;
    scfg.seed = util::mixCombine(cfg.seed, 0x57a1eULL + salt);
    scfg.obs = &session_obs;
    core::SnipScheme scheme(deployed.value());
    core::runSession(*game, scheme, scfg);
    uint64_t hits = session_obs.counterValue("lookup.hits");
    uint64_t misses = session_obs.counterValue("lookup.misses");
    return hits + misses ? static_cast<double>(hits) /
                               static_cast<double>(hits + misses)
                         : 0.0;
}

}  // namespace

util::Result<EpochPushReport>
pushEpoch(ModelRegistry &reg, const FleetSimConfig &cfg)
{
    const ModelVersion *head = reg.head(cfg.game);
    if (!head)
        return util::Status::Errorf(
            "fleet: no published head for '%s'", cfg.game.c_str());

    std::vector<CohortSpec> cohorts =
        cfg.cohorts.empty() ? defaultCohorts() : cfg.cohorts;
    double share_sum = 0.0;
    for (const CohortSpec &c : cohorts)
        share_sum += c.share;
    if (share_sum <= 0.0)
        return util::Status::Error("fleet: cohort shares sum to 0");

    EpochPushReport report;
    report.head = head->id;
    report.head_bytes = head->bytes;
    report.devices = cfg.devices;

    // Serial phase: per-cohort device counts, patch builds (the
    // registry's delta cache is single-writer) and end-to-end patch
    // verification through the device receive path.
    uint64_t assigned = 0;
    for (size_t i = 0; i < cohorts.size(); ++i) {
        const CohortSpec &spec = cohorts[i];
        CohortReport cr;
        cr.name = spec.name;
        cr.versions_behind = spec.versions_behind;
        cr.devices =
            i + 1 == cohorts.size()
                ? cfg.devices - assigned
                : static_cast<uint64_t>(
                      cfg.devices * (spec.share / share_sum));
        assigned += cr.devices;

        const ModelVersion *base =
            reg.behindHead(cfg.game, spec.versions_behind);
        cr.base_version = base ? base->id : 0;
        cr.full_bytes = cr.devices * head->bytes;

        uint64_t per_device = head->bytes;  // full-fetch default
        if (base && base->id == head->id) {
            // Already at head: nothing to ship.
            per_device = 0;
            cr.used_delta = true;
        } else if (base) {
            auto patch = reg.delta(cfg.game, base->id, head->id);
            // A patch only ships when it actually undercuts the
            // full package (deep staleness can diverge enough that
            // the delta degenerates past the package size).
            if (patch.ok() &&
                patch.value()->size() < head->bytes) {
                cr.patch_bytes = patch.value()->size();
                // Receive exactly as a device would: apply, fall
                // back to the full package on any rejection.
                util::ByteBuffer wire;
                wire.putBytes(patch.value()->data().data(),
                              patch.value()->size());
                bool used = false;
                util::ByteBuffer got = fetchWithDelta(
                    std::span<const uint8_t>(base->package->data()),
                    wire, *head->package, &used);
                if (got.data() != head->package->data())
                    return util::Status::Error(
                        "fleet: OTA receive path produced bytes "
                        "differing from the published head");
                cr.used_delta = used;
                if (used)
                    per_device = cr.patch_bytes;
                else
                    ++report.fallbacks;
            }
        }
        cr.delta_bytes = cr.devices * per_device;
        report.full_bytes += cr.full_bytes;
        report.delta_bytes += cr.delta_bytes;
        report.cohorts.push_back(std::move(cr));
    }

    // Parallel phase: each cohort's stale-model eval session is
    // independent (own game instance, own metrics registry).
    util::parallelFor(
        report.cohorts.size(),
        [&](size_t i) {
            report.cohorts[i].hit_rate = staleHitRate(
                cfg,
                reg.behindHead(cfg.game,
                               report.cohorts[i].versions_behind),
                i);
        },
        cfg.threads);

    double lo = 1.0, hi = 0.0;
    for (const CohortReport &cr : report.cohorts) {
        lo = std::min(lo, cr.hit_rate);
        hi = std::max(hi, cr.hit_rate);
    }
    report.staleness_skew = std::max(0.0, hi - lo);

    if (cfg.obs) {
        obs::Registry &r = *cfg.obs;
        r.counter("fleet.push.epochs").add(1);
        r.counter("fleet.push.devices").add(report.devices);
        r.counter("fleet.ota.full_bytes").add(report.full_bytes);
        r.counter("fleet.ota.delta_bytes").add(report.delta_bytes);
        r.counter("fleet.ota.fallbacks").add(report.fallbacks);
        r.gauge("fleet.push.staleness_skew")
            .set(report.staleness_skew);
    }
    return report;
}

std::vector<util::ByteBuffer>
recordUploadPayloads(const std::string &game_name,
                     const core::SnipModel &agreed, size_t count,
                     uint64_t seed, double session_s,
                     unsigned threads)
{
    std::vector<util::ByteBuffer> payloads(count);
    util::parallelFor(
        count,
        [&](size_t u) {
            auto game = games::makeGame(game_name);
            core::BaselineScheme baseline;
            core::SimulationConfig scfg;
            scfg.duration_s = session_s;
            scfg.record_events = true;
            scfg.seed = util::mixCombine(seed, 0xd01ceULL + u);
            core::SessionResult res =
                core::runSession(*game, baseline, scfg);
            auto replica = games::makeGame(game_name);
            trace::Profile profile =
                trace::Replayer::replay(res.trace, *replica);

            core::SnipModel device;
            device.game = game_name;
            device.table =
                std::make_unique<core::MemoTable>(game->schema());
            for (const core::TypeModel &t : agreed.types)
                device.table->setSelected(t.type,
                                          t.selection.selected);
            for (const auto &rec : profile.records)
                device.table->insert(rec);
            core::packModel(device, payloads[u]);
        },
        threads);
    return payloads;
}

void
bindLearner(core::LearningConfig &cfg, ModelRegistry &reg,
            const std::string &game)
{
    cfg.on_publish = [&reg, game](const util::ByteBuffer &pkg) {
        auto copy = std::make_shared<util::ByteBuffer>();
        copy->putBytes(pkg.data().data(), pkg.size());
        util::Result<VersionId> pub =
            reg.publish(game, std::move(copy));
        if (!pub.ok())
            util::warn("fleet: epoch publish refused: %s",
                       pub.status().message().c_str());
    };
}

}  // namespace fleet
}  // namespace snip
