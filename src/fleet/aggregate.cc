#include "fleet/aggregate.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "core/model_codec.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace snip {
namespace fleet {

AggregateStats
aggregateUploads(core::MemoTable &dest,
                 std::span<util::ByteBuffer> uploads,
                 const AggregateConfig &cfg)
{
    AggregateStats stats;
    stats.uploads = uploads.size();
    if (uploads.empty())
        return stats;

    // Decode every payload independently (one task per upload).
    // A payload that fails integrity checks is dropped, exactly as
    // the serial chain drops it — that device just contributes
    // nothing this round.
    std::vector<std::unique_ptr<core::MemoTable>> decoded(
        uploads.size());
    util::parallelFor(
        uploads.size(),
        [&](size_t u) {
            util::Result<core::SnipModel> res =
                core::unpackModel(uploads[u]);
            if (!res.ok() || !res.value().table) {
                util::warn("fleet: dropping upload %zu: %s", u,
                           res.ok() ? "no table in payload"
                                    : res.status().message().c_str());
                return;
            }
            decoded[u] = std::move(res.value().table);
        },
        cfg.threads);
    for (const auto &t : decoded)
        if (!t)
            ++stats.dropped;

    // Shard unions: contiguous upload ranges, merged in upload order
    // within each shard. Every shard table carries dest's selected
    // sets so re-projection matches the serial chain's.
    size_t nshards =
        std::clamp<size_t>(cfg.shards, 1, uploads.size());
    stats.shards = nshards;
    std::vector<std::unique_ptr<core::MemoTable>> shard_tables(
        nshards);
    util::parallelFor(
        nshards,
        [&](size_t s) {
            auto table =
                std::make_unique<core::MemoTable>(dest.schema());
            for (int t = 0; t < events::kNumEventTypes; ++t) {
                events::EventType type =
                    static_cast<events::EventType>(t);
                const auto &sel = dest.selected(type);
                if (!sel.empty())
                    table->setSelected(type, sel);
            }
            size_t begin = uploads.size() * s / nshards;
            size_t end = uploads.size() * (s + 1) / nshards;
            for (size_t u = begin; u < end; ++u)
                if (decoded[u])
                    table->mergeFrom(*decoded[u]);
            shard_tables[s] = std::move(table);
        },
        cfg.threads);

    // Tree-wise reduction: each level merges adjacent pairs
    // left-into-right-neighbor, preserving shard order, so the final
    // table's canonical entry order equals the serial chain's.
    while (shard_tables.size() > 1) {
        ++stats.merge_levels;
        size_t pairs = shard_tables.size() / 2;
        util::parallelFor(
            pairs,
            [&](size_t p) {
                shard_tables[2 * p]->mergeFrom(
                    *shard_tables[2 * p + 1]);
            },
            cfg.threads);
        std::vector<std::unique_ptr<core::MemoTable>> next;
        next.reserve(pairs + 1);
        for (size_t i = 0; i < shard_tables.size(); i += 2)
            next.push_back(std::move(shard_tables[i]));
        shard_tables = std::move(next);
    }
    dest.mergeFrom(*shard_tables[0]);

    if (cfg.obs) {
        obs::Registry &r = *cfg.obs;
        r.counter("fleet.aggregate.uploads").add(stats.uploads);
        r.counter("fleet.aggregate.dropped").add(stats.dropped);
        r.gauge("fleet.aggregate.shards")
            .set(static_cast<double>(stats.shards));
        r.gauge("fleet.aggregate.merge_levels")
            .set(static_cast<double>(stats.merge_levels));
    }
    return stats;
}

}  // namespace fleet
}  // namespace snip
