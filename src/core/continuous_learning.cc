#include "core/continuous_learning.h"

#include "core/model_codec.h"
#include "obs/span.h"
#include "trace/recorder.h"
#include "util/logging.h"
#include "util/rng.h"

namespace snip {
namespace core {

ContinuousLearner::ContinuousLearner(games::Game &game,
                                     games::Game &replica,
                                     LearningConfig cfg)
    : game_(game), replica_(replica), cfg_(std::move(cfg))
{
    if (game_.name() != replica_.name())
        util::fatal("ContinuousLearner: replica runs %s, game runs %s",
                    replica_.name().c_str(), game_.name().c_str());
    if (cfg_.relearn_every < 1)
        util::fatal("ContinuousLearner: relearn_every must be >= 1");
}

double
testedModelError(const SnipModel &model)
{
    double weighted = 0.0;
    double total = 0.0;
    for (const auto &t : model.types) {
        double w = static_cast<double>(t.records);
        weighted += t.selection.selected_error * w;
        total += w;
    }
    return total > 0 ? weighted / total : 1.0;
}

std::vector<EpochResult>
ContinuousLearner::run()
{
    SimulationConfig scfg = cfg_.sim;
    scfg.duration_s = cfg_.session_s;
    scfg.record_events = true;
    scfg.obs = cfg_.obs;
    obs::Span learn_span(cfg_.obs, "learn");

    // Seed profile: one baseline session, replayed offline, then
    // truncated to the artificially insufficient size.
    scfg.seed = util::mixCombine(cfg_.sim.seed, 0xbadc0ffeULL);
    BaselineScheme baseline;
    SessionResult seed_session = runSession(game_, baseline, scfg);
    trace::Profile profile =
        trace::Replayer::replay(seed_session.trace, replica_)
            .truncated(cfg_.initial_profile_records);

    std::vector<EpochResult> results;
    SnipModel model;
    // The device's runtime scheme persists between re-learns so its
    // online-fill overlay keeps accumulating across epochs; each
    // newly shipped model replaces it.
    std::unique_ptr<SnipScheme> scheme;
    // Incremental mode: one cache set spans every re-learn. Lives
    // outside the loop so PFI results survive between epochs.
    ShrinkCaches caches;
    uint64_t payload_bytes = 0;
    uint64_t rejected_packages = 0;
    for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
        obs::Span epoch_span(cfg_.obs, "epoch");
        if (epoch % cfg_.relearn_every == 0) {
            scheme.reset();  // borrows model; drop before replacing
            SnipConfig sc = cfg_.snip;
            // Per-epoch seed remixing deliberately decorrelates PFI
            // noise across epochs; incremental mode trades that for
            // cross-epoch cache hits, which need the seed stable.
            sc.seed = cfg_.incremental_shrink
                          ? cfg_.snip.seed
                          : util::mixCombine(
                                cfg_.snip.seed,
                                static_cast<uint64_t>(epoch));
            if (cfg_.incremental_shrink)
                sc.caches = &caches;
            sc.obs = cfg_.obs;
            SnipModel built = buildSnipModel(profile, game_, sc);

            // Deploy through the OTA transport: the table the phone
            // runs is the one that survived serialize->deserialize,
            // never the in-memory pointer. deployModel attaches a
            // zero-copy FrozenTable view over the package bytes (the
            // model shares ownership of the buffer, so it outlives
            // this scope). A package that fails integrity checks is
            // rejected and the device keeps running at baseline
            // until the next epoch's push.
            auto pkg = std::make_shared<util::ByteBuffer>();
            packModel(built, *pkg);
            if (cfg_.on_publish)
                cfg_.on_publish(*pkg);
            if (cfg_.ota_tamper)
                cfg_.ota_tamper(*pkg);
            payload_bytes = pkg->size();
            util::Result<SnipModel> shipped = deployModel(pkg);
            if (shipped.ok()) {
                model = std::move(shipped.value());
            } else {
                util::warn("continuous learning: rejected OTA "
                           "package at epoch %d: %s", epoch,
                           shipped.status().message().c_str());
                model = SnipModel{};
                // The rejected package never reached the device:
                // the epoch deploys nothing, so it must not report
                // the dead package's size.
                payload_bytes = 0;
                ++rejected_packages;
            }
        }

        bool deployed = model.deployed();
        bool gate_withheld = false;
        if (cfg_.confidence_gate && deployed &&
            (profile.records.size() < cfg_.gate_min_records ||
             testedModelError(model) > cfg_.gate_threshold)) {
            deployed = false;
            gate_withheld = true;
        }

        scfg.seed = util::mixCombine(cfg_.sim.seed,
                                     0x1000ULL + epoch);
        EpochResult er;
        er.epoch = epoch;
        er.profile_records = profile.records.size();
        er.table_bytes = model.tableBytes();
        er.payload_bytes = payload_bytes;
        er.deployed = deployed;
        er.gate_withheld = gate_withheld;
        er.rejected_packages = rejected_packages;

        SessionResult res = [&] {
            if (deployed) {
                if (!scheme)
                    scheme = std::make_unique<SnipScheme>(model);
                return runSession(game_, *scheme, scfg);
            }
            BaselineScheme b;
            return runSession(game_, b, scfg);
        }();
        er.error_field_rate = res.stats.errorFieldRate();
        er.coverage = res.stats.coverageInstr();
        er.energy_j = res.report.total();
        results.push_back(er);

        if (cfg_.obs) {
            obs::Registry &r = *cfg_.obs;
            r.counter("learn.epochs").add(1);
            if (deployed)
                r.counter("learn.deployed_epochs").add(1);
            if (gate_withheld)
                r.counter("learn.gate_withheld").add(1);
            r.histogram("learn.payload_bytes")
                .add(static_cast<double>(payload_bytes));
            r.gauge("learn.rejected_packages")
                .set(static_cast<double>(rejected_packages));
            r.gauge("learn.table_bytes")
                .set(static_cast<double>(er.table_bytes));
            r.gauge("learn.profile_records")
                .set(static_cast<double>(er.profile_records));
            r.gauge("learn.error_field_rate")
                .set(er.error_field_rate);
        }

        // "Send events to cloud": replay this session and grow the
        // profile, dropping the oldest records beyond the cap.
        trace::Profile grown =
            trace::Replayer::replay(res.trace, replica_);
        profile.append(grown);
        if (profile.records.size() > cfg_.max_profile_records) {
            size_t excess =
                profile.records.size() - cfg_.max_profile_records;
            profile.records.erase(profile.records.begin(),
                                  profile.records.begin() +
                                      static_cast<long>(excess));
        }
    }
    return results;
}

}  // namespace core
}  // namespace snip
