/**
 * @file
 * The immutable, deploy-side form of the SNIP lookup table. A
 * FrozenTable is one contiguous little-endian arena per model: an
 * open-addressing event-subkey index (flat power-of-two array,
 * linear probing) per event type whose slots point at ranges of
 * structure-of-arrays entry storage — key slots, key values, output
 * ids/values and entry sizes each in one flat array, the entries of
 * a bucket adjacent. A lookup is one index probe plus a linear scan
 * of adjacent memory: zero per-entry pointer chasing and zero
 * allocations.
 *
 * The arena's in-memory layout *is* its on-wire layout (the "SNPF"
 * section of a v2 model package), so OTA deploy can construct a
 * FrozenTable as a bounds-checked zero-copy view over the package
 * bytes. Ownership contract: a view never outlives its backing
 * buffer — attach() takes a shared_ptr keep-alive, and freeze()
 * produces a self-owning arena. See DESIGN.md "Frozen deployed
 * table".
 */

#ifndef SNIP_CORE_FROZEN_TABLE_H
#define SNIP_CORE_FROZEN_TABLE_H

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "core/memo_table.h"
#include "util/status.h"

namespace snip {
namespace core {

/** Arena magic ("SNPF"), first word of the frozen layout. */
constexpr uint32_t kFrozenMagic = 0x534e5046;
/** Frozen arena format version. */
constexpr uint32_t kFrozenVersion = 1;

/** Result of one frozen-table lookup (mirrors MemoLookup). */
struct FrozenLookup {
    bool hit = false;
    /** Candidate entries scanned under the event-subkey index. */
    uint32_t candidates = 0;
    /** Total bytes gathered + compared (same accounting as
     *  MemoTable::lookup, including kEntryHeaderBytes per entry). */
    uint64_t bytes_scanned = 0;
    /**
     * Ordinal of the matched entry across the whole table (types in
     * ascending order, entries in canonical order within a type).
     * Valid when hit; indexes a caller-owned hit-count array.
     */
    uint32_t entry_ordinal = 0;
    /** Matched entry's memoized outputs (views into the arena). */
    uint32_t nout = 0;
    const events::FieldId *out_ids = nullptr;
    const uint64_t *out_values = nullptr;
};

/**
 * Immutable deployed lookup table over a frozen arena.
 *
 * Thread safety: every method is const and touches only immutable
 * state, so any number of threads may look up concurrently on a
 * shared FrozenTable (each with its own scratch). Hit accounting is
 * the caller's job, via FrozenLookup::entry_ordinal into an array
 * the caller owns — there is nothing to race on by construction.
 */
class FrozenTable
{
  public:
    /**
     * Build a frozen arena from a mutable build-side table. Pure and
     * deterministic: the arena bytes are a function of the table's
     * canonical entry order alone, so freeze(unpack(pack(m))) is
     * byte-identical to freeze(m).
     */
    static std::shared_ptr<const FrozenTable>
    freeze(const MemoTable &table);

    /**
     * Attach a validated view over arena bytes (the deploy path).
     * Every offset, count and field id is bounds-checked against
     * @p size and @p schema before the view is returned; a malformed
     * arena yields an error Status, never UB. @p owner keeps the
     * backing buffer alive for the view's lifetime (zero-copy). If
     * @p data is not 8-aligned the bytes are copied into an owned
     * aligned buffer instead (still no per-entry work).
     */
    static util::Result<std::shared_ptr<const FrozenTable>>
    attach(const uint8_t *data, size_t size,
           std::shared_ptr<const void> owner,
           const events::FieldSchema &schema);

    /**
     * Look up an event. Identical semantics and byte/candidate
     * accounting to MemoTable::lookup over the same entries: gather
     * cost is charged even on an empty bucket, candidates are
     * scanned in canonical order, comparison checks stored key
     * slots against the gathered values.
     */
    FrozenLookup lookup(const events::EventObject &ev,
                        const games::Game &game,
                        LookupScratch &scratch) const;

    /**
     * Whether an observed execution is already memoized: projects
     * the record onto the type's selected fields and compares
     * against the bucket's entries exactly as MemoTable::insert's
     * duplicate check would. Used to keep online-fill overlays free
     * of entries the frozen table already holds.
     */
    bool containsRecord(const games::HandlerExecution &rec) const;

    /**
     * Visit every entry as a HandlerExecution (inputs = key fields,
     * canonical id order) in global ordinal order. Re-inserting the
     * records into a MemoTable with the same selections rebuilds
     * the exact source table (the v1-compat / server-side path).
     */
    void visitRecords(
        const std::function<void(const games::HandlerExecution &)>
            &fn) const;

    /** The schema snapshot the table was built/deployed against. */
    const events::FieldSchema &schema() const { return schema_; }

    /** Entries across all types. */
    size_t entryCount() const { return total_entries_; }
    /** Entries of one type. */
    size_t entryCount(events::EventType type) const;
    /** Modeled payload bytes (same accounting as MemoTable). */
    uint64_t totalBytes() const { return total_bytes_; }
    /** Sum of selected-field sizes for a type (bytes). */
    uint64_t selectedBytes(events::EventType type) const;
    /** Selected fields of a type (empty when undeployed). */
    std::vector<events::FieldId>
    selectedVector(events::EventType type) const;
    /** Widest selected set across types (scratch pre-sizing). */
    size_t maxSelected() const;
    /** Open-addressing capacity of a type's index (0 = undeployed). */
    uint32_t indexCapacity(events::EventType type) const;
    /** Used slots (buckets) of a type's index. */
    uint32_t bucketCount(events::EventType type) const;
    /** Used / capacity across all type indexes (<= 0.5 by build). */
    double indexLoadFactor() const;

    /** Whether this view borrows its bytes (no owned copy). */
    bool zeroCopy() const { return owned_.empty(); }

    /** Raw arena bytes (the v2 "SNPF" wire section, verbatim). */
    const uint8_t *arenaData() const { return data_; }
    size_t arenaSize() const { return size_; }

    /**
     * Export table shape as `table.*` gauges, like
     * MemoTable::recordStats, plus `table.layout` = 1 (frozen) and
     * `table.index_load_factor`.
     */
    void recordStats(obs::Registry &reg) const;

  private:
    FrozenTable() = default;

    /** Decoded view of one type's arena block. */
    struct TypeView {
        uint32_t nselected = 0;  // 0 = type undeployed
        uint32_t capacity = 0;   // index slots (power of two)
        uint32_t nentries = 0;
        uint32_t buckets = 0;    // used index slots
        uint64_t selected_bytes = 0;
        uint64_t type_bytes = 0;
        /** First global entry ordinal of this type. */
        uint32_t entry_base = 0;
        const events::FieldId *selected = nullptr;
        const uint8_t *is_event = nullptr;
        /** Index slots: {u64 subkey, u32 begin, u32 count}[cap]. */
        const uint8_t *index = nullptr;
        const uint32_t *key_off = nullptr;  // [nentries + 1]
        const uint32_t *out_off = nullptr;  // [nentries + 1]
        const uint32_t *key_slots = nullptr;
        const uint64_t *key_values = nullptr;
        const events::FieldId *out_ids = nullptr;
        const uint64_t *out_values = nullptr;
        const uint32_t *entry_bytes = nullptr;
    };

    uint64_t eventSubkey(const TypeView &tv,
                         const std::vector<events::FieldValue>
                             &fields) const;
    /** Probe the index for @p subkey; false = no bucket. */
    bool probe(const TypeView &tv, uint64_t subkey, uint32_t *begin,
               uint32_t *count) const;
    /** Decode directory + validate everything; data_/size_ set. */
    util::Status decode(const events::FieldSchema &schema);

    const uint8_t *data_ = nullptr;
    size_t size_ = 0;
    /** Keep-alive for a zero-copy view (null when self-owned). */
    std::shared_ptr<const void> owner_;
    /** Owned storage (freeze() or misaligned-attach fallback);
     *  u64-backed so the arena base is always 8-aligned. */
    std::vector<uint64_t> owned_;

    events::FieldSchema schema_;
    std::array<TypeView, events::kNumEventTypes> types_{};
    size_t total_entries_ = 0;
    uint64_t total_bytes_ = 0;
};

}  // namespace core
}  // namespace snip

#endif  // SNIP_CORE_FROZEN_TABLE_H
