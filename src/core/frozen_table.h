/**
 * @file
 * The immutable, deploy-side form of the SNIP lookup table. A
 * FrozenTable is one contiguous little-endian arena per model: an
 * open-addressing event-subkey index (flat power-of-two array,
 * linear probing) per event type whose slots point at ranges of
 * structure-of-arrays entry storage — key slots, key values, output
 * ids/values and entry sizes each in one flat array, the entries of
 * a bucket adjacent. A lookup is one index probe plus a linear scan
 * of adjacent memory: zero per-entry pointer chasing and zero
 * allocations.
 *
 * The arena's in-memory layout *is* its on-wire layout (the "SNPF"
 * section of a v2 model package), so OTA deploy can construct a
 * FrozenTable as a bounds-checked zero-copy view over the package
 * bytes. Ownership contract: a view never outlives its backing
 * buffer — attach() takes a shared_ptr keep-alive, and freeze()
 * produces a self-owning arena. See DESIGN.md "Frozen deployed
 * table".
 */

#ifndef SNIP_CORE_FROZEN_TABLE_H
#define SNIP_CORE_FROZEN_TABLE_H

#include <array>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/memo_table.h"
#include "util/status.h"

namespace snip {
namespace core {

/** Arena magic ("SNPF"), first word of the frozen layout. */
constexpr uint32_t kFrozenMagic = 0x534e5046;
/** Frozen arena format version. */
constexpr uint32_t kFrozenVersion = 1;

/** Result of one frozen-table lookup (mirrors MemoLookup). */
struct FrozenLookup {
    bool hit = false;
    /** Candidate entries scanned under the event-subkey index. */
    uint32_t candidates = 0;
    /** Total bytes gathered + compared (same accounting as
     *  MemoTable::lookup, including kEntryHeaderBytes per entry). */
    uint64_t bytes_scanned = 0;
    /**
     * Ordinal of the matched entry across the whole table (types in
     * ascending order, entries in canonical order within a type).
     * Valid when hit; indexes a caller-owned hit-count array.
     */
    uint32_t entry_ordinal = 0;
    /** Matched entry's memoized outputs (views into the arena). */
    uint32_t nout = 0;
    const events::FieldId *out_ids = nullptr;
    const uint64_t *out_values = nullptr;
};

/**
 * A resolved index probe for one event: the candidate-entry range
 * its event subkey selects. count == 0 means no bucket (or the
 * event's type is undeployed). Probes depend only on the event's
 * fields and the immutable arena, so they stay valid for the
 * table's lifetime and can be precomputed ahead of the decide loop
 * (probeBatch / SnipScheme::prepareBatch).
 */
struct FrozenProbe {
    uint32_t begin = 0;
    uint32_t count = 0;
};

/**
 * Caller-owned reusable buffers for the batched lookup path: the
 * type-grouping order, per-event subkeys/probes, the gathered input
 * columns and the per-bucket key-match flags. Reusing one scratch
 * across blocks makes lookupBatch allocation-free once the buffers
 * have grown to the block size / widest selection / largest bucket.
 */
struct BatchLookupScratch {
    /** Event indices grouped by type (original order within). */
    std::vector<uint32_t> order;
    /** Group boundaries into order: [type] .. [type + 1]. */
    std::vector<uint32_t> type_begin;
    /** Resolved probe per event (original index). */
    std::vector<FrozenProbe> probes;
    /**
     * Cached canonical-layout map for one event type: where each
     * selected event field sits in the type's canonical field
     * vector. Layouts are a property of the handler spec, so the
     * map survives across blocks; it is keyed by the owning
     * table's unique id (monotonic, never reused — a recycled heap
     * address cannot alias) and rebuilt whenever the id or the
     * group's first event stops matching. Events are still
     * verified against the map individually, so a stale map can
     * only cost speed, never correctness.
     */
    struct GroupMap {
        uint64_t table_id = 0;  // 0 = never built
        bool layout_ok = false;
        /** Canonical field-vector size. */
        uint32_t nf = 0;
        /** Subkey-memo tag for this (table, field-map, width). */
        uint64_t tag = 0;
        /** The canonical id sequence (the map's source event's
         *  ids, in order): an event whose id sequence equals this
         *  one resolves every findField exactly as the source
         *  event did. */
        std::vector<events::FieldId> expected_ids;
        /** Selected event fields' positions in the canonical
         *  layout (compact, ascending selected order) and their
         *  field ids. */
        std::vector<uint32_t> event_pos;
        std::vector<uint32_t> event_fid;
        /** Canonical position by selected slot; ~0u on non-event
         *  slots. */
        std::vector<uint32_t> pos_by_slot;
    };
    /** Per-type cached layout maps (indexed by event type). */
    std::vector<GroupMap> group_maps;
    /** Per event: fields match the canonical layout (original
     *  index; only meaningful within the current group). */
    std::vector<uint8_t> canon;
    /** Per-event gathered values (event fields overlaid). */
    LookupScratch gather;
    /** Non-event (game-state) columns, gathered once per group. */
    std::vector<uint64_t> base_values;
    std::vector<uint8_t> base_present;
    /** Per-key match flags over one bucket's flat key range. */
    std::vector<uint8_t> keymatch;

    /**
     * Direct-mapped subkey/probe memo: event streams repeat the
     * same selected-field value tuples constantly (the premise the
     * memo table itself rests on), and the subkey mix chain plus
     * the index walk are the batch path's hottest computations.
     * Keyed by the full value tuple plus a tag of the type's
     * selected event fields and the owning table's unique id,
     * compared exactly on every probe, so a cached entry is always
     * what the mix chain and index walk would produce — a memo hit
     * skips both.
     */
    struct alignas(64) SubkeyMemo {
        uint64_t tag = 0;  // field map + table id fingerprint
        uint64_t vals[4] = {0, 0, 0, 0};
        uint64_t subkey = 0;
        /** Cached probe result for (table, subkey). */
        uint32_t begin = 0;
        uint32_t count = 0;
        uint32_t m = ~0u;  // tuple width; ~0u = empty slot
    };
    std::vector<SubkeyMemo> subkey_memo;
};

/**
 * Immutable deployed lookup table over a frozen arena.
 *
 * Thread safety: every method is const and touches only immutable
 * state, so any number of threads may look up concurrently on a
 * shared FrozenTable (each with its own scratch). Hit accounting is
 * the caller's job, via FrozenLookup::entry_ordinal into an array
 * the caller owns — there is nothing to race on by construction.
 */
class FrozenTable
{
  public:
    /**
     * Build a frozen arena from a mutable build-side table. Pure and
     * deterministic: the arena bytes are a function of the table's
     * canonical entry order alone, so freeze(unpack(pack(m))) is
     * byte-identical to freeze(m).
     */
    static std::shared_ptr<const FrozenTable>
    freeze(const MemoTable &table);

    /**
     * Attach a validated view over arena bytes (the deploy path).
     * Every offset, count and field id is bounds-checked against
     * @p size and @p schema before the view is returned; a malformed
     * arena yields an error Status, never UB. @p owner keeps the
     * backing buffer alive for the view's lifetime (zero-copy). If
     * @p data is not 8-aligned the bytes are copied into an owned
     * aligned buffer instead (still no per-entry work).
     */
    static util::Result<std::shared_ptr<const FrozenTable>>
    attach(const uint8_t *data, size_t size,
           std::shared_ptr<const void> owner,
           const events::FieldSchema &schema);

    /**
     * Look up an event. Identical semantics and byte/candidate
     * accounting to MemoTable::lookup over the same entries: gather
     * cost is charged even on an empty bucket, candidates are
     * scanned in canonical order, comparison checks stored key
     * slots against the gathered values.
     */
    FrozenLookup lookup(const events::EventObject &ev,
                        const games::Game &game,
                        LookupScratch &scratch) const;

    /**
     * Resolve the index probe for one event: subkey hash plus the
     * open-addressing walk, no gathering or comparing. lookup() is
     * exactly finishLookup(ev, ..., probeEvent(ev)).
     */
    FrozenProbe probeEvent(const events::EventObject &ev) const;

    /**
     * Complete a lookup from a precomputed probe: charge the gather
     * cost, gather the selected inputs, and scan the probe's
     * candidate range. Identical accounting to lookup() — the probe
     * merely skips recomputing the subkey and index walk.
     */
    FrozenLookup finishLookup(const events::EventObject &ev,
                              const games::Game &game,
                              LookupScratch &scratch,
                              FrozenProbe probe) const;

    /**
     * Resolve index probes for a block of events: the block is
     * grouped by event type (stable counting sort) so each type's
     * index is walked while cache-resident, and the probed slot of
     * the next event in the group is software-prefetched one
     * iteration ahead. Writes out[i] = probeEvent(evs[i]).
     */
    void probeBatch(std::span<const events::EventObject> evs,
                    std::span<FrozenProbe> out,
                    BatchLookupScratch &scratch) const;

    /**
     * Look up a block of events in one batched pass. Requires
     * evs.size() == out.size(). Produces out[i] identical (bitwise,
     * including candidate/byte accounting and arena out-pointers) to
     * lookup(evs[i], game, ...) — under the static-game-state
     * contract: the game's state must not change for the duration of
     * the block, because the non-event (history/extern) input
     * columns are gathered once per type group rather than once per
     * event. Event-side fields still come from each event.
     *
     * The pass runs type-grouped (index cache-resident, probes
     * prefetched one ahead) and compares the CSR key columns
     * column-wise: per bucket, a flat pass over the adjacent
     * key_slots/key_values columns computes a match flag per stored
     * key, then each candidate reduces its flag range — the
     * width-wise loop form the compiler can vectorize.
     */
    void lookupBatch(std::span<const events::EventObject> evs,
                     const games::Game &game,
                     std::span<FrozenLookup> out,
                     BatchLookupScratch &scratch) const;

    /**
     * Whether an observed execution is already memoized: projects
     * the record onto the type's selected fields and compares
     * against the bucket's entries exactly as MemoTable::insert's
     * duplicate check would. Used to keep online-fill overlays free
     * of entries the frozen table already holds.
     */
    bool containsRecord(const games::HandlerExecution &rec) const;

    /**
     * Visit every entry as a HandlerExecution (inputs = key fields,
     * canonical id order) in global ordinal order. Re-inserting the
     * records into a MemoTable with the same selections rebuilds
     * the exact source table (the v1-compat / server-side path).
     */
    void visitRecords(
        const std::function<void(const games::HandlerExecution &)>
            &fn) const;

    /** The schema snapshot the table was built/deployed against. */
    const events::FieldSchema &schema() const { return schema_; }

    /** Entries across all types. */
    size_t entryCount() const { return total_entries_; }
    /** Entries of one type. */
    size_t entryCount(events::EventType type) const;
    /** Modeled payload bytes (same accounting as MemoTable). */
    uint64_t totalBytes() const { return total_bytes_; }
    /** Sum of selected-field sizes for a type (bytes). */
    uint64_t selectedBytes(events::EventType type) const;
    /** Selected fields of a type (empty when undeployed). */
    std::vector<events::FieldId>
    selectedVector(events::EventType type) const;
    /** Widest selected set across types (scratch pre-sizing). */
    size_t maxSelected() const;
    /** Open-addressing capacity of a type's index (0 = undeployed). */
    uint32_t indexCapacity(events::EventType type) const;
    /** Used slots (buckets) of a type's index. */
    uint32_t bucketCount(events::EventType type) const;
    /** Used / capacity across all type indexes (<= 0.5 by build). */
    double indexLoadFactor() const;

    /** Whether this view borrows its bytes (no owned copy). */
    bool zeroCopy() const { return owned_.empty(); }

    /** Raw arena bytes (the v2 "SNPF" wire section, verbatim). */
    const uint8_t *arenaData() const { return data_; }
    size_t arenaSize() const { return size_; }

    /**
     * Export table shape as `table.*` gauges, like
     * MemoTable::recordStats, plus `table.layout` = 1 (frozen) and
     * `table.index_load_factor`.
     */
    void recordStats(obs::Registry &reg) const;

  private:
    FrozenTable() = default;

    /** Decoded view of one type's arena block. */
    struct TypeView {
        uint32_t nselected = 0;  // 0 = type undeployed
        uint32_t capacity = 0;   // index slots (power of two)
        uint32_t nentries = 0;
        uint32_t buckets = 0;    // used index slots
        uint64_t selected_bytes = 0;
        uint64_t type_bytes = 0;
        /** First global entry ordinal of this type. */
        uint32_t entry_base = 0;
        const events::FieldId *selected = nullptr;
        const uint8_t *is_event = nullptr;
        /** Index slots: {u64 subkey, u32 begin, u32 count}[cap]. */
        const uint8_t *index = nullptr;
        const uint32_t *key_off = nullptr;  // [nentries + 1]
        const uint32_t *out_off = nullptr;  // [nentries + 1]
        const uint32_t *key_slots = nullptr;
        const uint64_t *key_values = nullptr;
        const events::FieldId *out_ids = nullptr;
        const uint64_t *out_values = nullptr;
        const uint32_t *entry_bytes = nullptr;
    };

    uint64_t eventSubkey(const TypeView &tv,
                         const std::vector<events::FieldValue>
                             &fields) const;
    /** Probe the index for @p subkey; false = no bucket. */
    bool probe(const TypeView &tv, uint64_t subkey, uint32_t *begin,
               uint32_t *count) const;
    /**
     * Subkey + probe pass for one type group (order[gb..ge) in
     * scratch, all of type @p t). Fills scratch.canon for the
     * group's events and writes their probes
     * into @p out (original indices). Reuses (or rebuilds) the
     * type's cached layout map, scratch.group_maps[t]; returns
     * whether that map is usable.
     */
    bool probeGroup(std::span<const events::EventObject> evs,
                    int t, uint32_t gb, uint32_t ge,
                    std::span<FrozenProbe> out,
                    BatchLookupScratch &scratch) const;
    /** Decode directory + validate everything; data_/size_ set. */
    util::Status decode(const events::FieldSchema &schema);

    const uint8_t *data_ = nullptr;
    size_t size_ = 0;
    /** Keep-alive for a zero-copy view (null when self-owned). */
    std::shared_ptr<const void> owner_;
    /** Owned storage (freeze() or misaligned-attach fallback);
     *  u64-backed so the arena base is always 8-aligned. */
    std::vector<uint64_t> owned_;

    events::FieldSchema schema_;
    std::array<TypeView, events::kNumEventTypes> types_{};
    size_t total_entries_ = 0;
    uint64_t total_bytes_ = 0;
    /** Unique per-instance id (monotonic, never reused) keying the
     *  cached layout maps in BatchLookupScratch. */
    uint64_t id_ = nextTableId();

    static uint64_t nextTableId();
};

}  // namespace core
}  // namespace snip

#endif  // SNIP_CORE_FROZEN_TABLE_H
