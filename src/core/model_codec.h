/**
 * @file
 * OTA packaging of the deployable SnipModel (paper Fig. 10 steps
 * 4–5: ship the PFI-trimmed table to the phone, then keep pushing
 * updated tables as re-profiling runs). A package is the versioned
 * little-endian envelope
 *
 *   u32 magic "SNPM" | u32 version | u32 payload_len |
 *   payload bytes    | u32 crc32(payload)
 *
 * whose payload carries the game name, a snapshot of the field
 * schema, the per-type PFI selections, and the full MemoTable
 * contents (entries in canonical bucket order, so that
 * serialize(deserialize(serialize(m))) is byte-identical).
 *
 * Unpacking is corruption-safe: a truncated, bit-flipped, or
 * version-mismatched package is *rejected* with an error Status —
 * never a crash — and the runtime keeps executing at baseline
 * (snipping is always optional). See DESIGN.md "OTA model package".
 */

#ifndef SNIP_CORE_MODEL_CODEC_H
#define SNIP_CORE_MODEL_CODEC_H

#include <string>

#include "core/snip.h"
#include "util/bytes.h"
#include "util/status.h"

namespace snip {
namespace core {

/** Package magic ("SNPM" in the trace_log magic style). */
constexpr uint32_t kModelMagic = 0x534e504d;
/** Current package format version. Readers reject other versions. */
constexpr uint32_t kModelVersion = 1;

/** Serialize @p model into the OTA envelope, appended to @p out. */
void packModel(const SnipModel &model, util::ByteBuffer &out);

/**
 * Validate (magic, version, length, CRC) and decode a package.
 * Reads the whole buffer from the start. On any malformed input —
 * truncation, bit corruption, bad counts or field ids, unsupported
 * version — returns an error Status and no model.
 */
util::Result<SnipModel> unpackModel(util::ByteBuffer &buf);

/** Shallow header/integrity summary of a package. */
struct PackageInfo {
    uint32_t version = 0;
    /** Payload bytes between header and CRC footer. */
    uint32_t payload_bytes = 0;
    /** CRC stored in the footer. */
    uint32_t crc = 0;
    /** Footer CRC matches the payload bytes actually present. */
    bool crc_ok = false;
};

/**
 * Check the envelope without decoding the payload. Errors on a
 * malformed header or truncated payload; CRC mismatch is reported
 * via info->crc_ok so inspect tooling can still show the header.
 */
util::Status inspectPackage(util::ByteBuffer &buf, PackageInfo *info);

/** Pack and write to a file. */
util::Status saveModel(const SnipModel &model,
                       const std::string &path);

/** Read a file and unpack; error Status on I/O or corruption. */
util::Result<SnipModel> loadModel(const std::string &path);

/** Size in bytes of the packed OTA payload of @p model. */
uint64_t packedModelBytes(const SnipModel &model);

}  // namespace core
}  // namespace snip

#endif  // SNIP_CORE_MODEL_CODEC_H
