/**
 * @file
 * OTA packaging of the deployable SnipModel (paper Fig. 10 steps
 * 4–5: ship the PFI-trimmed table to the phone, then keep pushing
 * updated tables as re-profiling runs). A package is the versioned
 * little-endian envelope
 *
 *   u32 magic "SNPM" | u32 version | u32 payload_len |
 *   payload bytes    | u32 crc32(payload)
 *
 * whose payload carries the game name, a snapshot of the field
 * schema, the per-type PFI selections, and the lookup table.
 *
 * Version 2 carries the table as a "SNPF" frozen arena
 * (frozen_table.h) whose on-wire bytes *are* the runtime layout:
 * deployModel() attaches a bounds-checked zero-copy FrozenTable view
 * over the package bytes, so OTA deploy costs CRC + header
 * validation instead of a per-entry rebuild. unpackModel() is the
 * server-side reader: it rebuilds a mutable MemoTable from the arena
 * (for federated merging and re-learning); freeze() of that rebuild
 * reproduces the arena byte for byte, so pack→unpack→pack is still
 * byte-identical. Version 1 packages (per-entry wire format) are
 * still read via the rebuild path.
 *
 * Unpacking is corruption-safe: a truncated, bit-flipped, or
 * version-mismatched package — including a malformed arena behind a
 * valid CRC — is *rejected* with an error Status — never a crash —
 * and the runtime keeps executing at baseline (snipping is always
 * optional). See DESIGN.md "OTA model package".
 */

#ifndef SNIP_CORE_MODEL_CODEC_H
#define SNIP_CORE_MODEL_CODEC_H

#include <memory>
#include <string>

#include "core/snip.h"
#include "util/bytes.h"
#include "util/status.h"

namespace snip {
namespace core {

/** Package magic ("SNPM" in the trace_log magic style). */
constexpr uint32_t kModelMagic = 0x534e504d;
/** Current package format version (frozen-arena table section). */
constexpr uint32_t kModelVersion = 2;
/** Legacy per-entry format, still readable via the rebuild path. */
constexpr uint32_t kLegacyModelVersion = 1;

/** Serialize @p model into the OTA envelope, appended to @p out. */
void packModel(const SnipModel &model, util::ByteBuffer &out);

/**
 * Validate (magic, version, length, CRC) and decode a package into
 * its *mutable* form: the server-side reader. Reads the whole buffer
 * from the start; v2 arenas are rebuilt into a MemoTable, v1
 * packages decode natively. On any malformed input — truncation, bit
 * corruption, bad counts or field ids, unsupported version — returns
 * an error Status and no model.
 */
util::Result<SnipModel> unpackModel(util::ByteBuffer &buf);

/**
 * Device-side deploy: validate the envelope and attach the model's
 * table as a zero-copy FrozenTable view over the package bytes
 * (v2; the package buffer is kept alive by the returned model's
 * view, and `model.table` stays null). v1 packages fall back to the
 * per-entry rebuild and are frozen after. Malformed input — wrong
 * CRC, or an arena whose offsets/ids/geometry fail validation even
 * behind a correct CRC — is rejected with an error Status.
 */
util::Result<SnipModel>
deployModel(std::shared_ptr<util::ByteBuffer> pkg);

/** Shallow header/integrity summary of a package. */
struct PackageInfo {
    uint32_t version = 0;
    /** Payload bytes between header and CRC footer. */
    uint32_t payload_bytes = 0;
    /** CRC stored in the footer. */
    uint32_t crc = 0;
    /** Footer CRC matches the payload bytes actually present. */
    bool crc_ok = false;
};

/**
 * Check the envelope without decoding the payload. Errors on a
 * malformed header or truncated payload; CRC mismatch is reported
 * via info->crc_ok so inspect tooling can still show the header.
 */
util::Status inspectPackage(util::ByteBuffer &buf, PackageInfo *info);

/** Pack and write to a file. */
util::Status saveModel(const SnipModel &model,
                       const std::string &path);

/** Read a file and unpack; error Status on I/O or corruption. */
util::Result<SnipModel> loadModel(const std::string &path);

/** Size in bytes of the packed OTA payload of @p model. */
uint64_t packedModelBytes(const SnipModel &model);

}  // namespace core
}  // namespace snip

#endif  // SNIP_CORE_MODEL_CODEC_H
