/**
 * @file
 * Pipelined async session runtime: the session loop of
 * core::runSession restructured into three stages —
 *
 *   gen    — event generation / sensor sampling (detail::EventGen)
 *   decide — SNIP probe resolution against the frozen table
 *            (Scheme::resolveProbes, const, own scratch)
 *   exec   — handler execution + SoC charging + accounting
 *            (detail::SessionBody; adopts the stage-2 probes)
 *
 * — connected by bounded lock-free SPSC ring buffers
 * (util::StageQueue) with backpressure, mirroring the
 * sensor-HAL → binder → dispatch thread structure of the Android
 * input path the paper instruments.
 *
 * Stages are statically pinned to workers (stage s runs on worker
 * s mod W, W in [1, 3]); each worker round-robins its stages with a
 * non-blocking step() per stage, so no worker ever blocks on a queue
 * another of its own stages must drain — the pipeline is
 * deadlock-free at every worker count, and W = 1 degenerates to a
 * cooperative single-threaded schedule that still exercises the
 * queues, backpressure and metrics.
 *
 * Determinism contract (enforced by PipelineTest): a pipelined
 * session reproduces the sequential session's decisions, energy
 * accounting and SessionStats **bitwise** at every queue capacity
 * and worker count. It holds by construction: both runtimes drive
 * the same EventGen/SessionBody objects through the same call
 * sequence; generation never depends on execution (Game's event-gen
 * state is disjoint from its handler state); probe resolution is a
 * pure function of the immutable frozen arena; and everything
 * order-dependent — SoC charging, scheme mutation, stats — stays in
 * the exec stage, in delivery order.
 *
 * With SimulationConfig::obs set, exports under `pipeline.*`:
 * per-stage occupancy gauges, items / busy_ns / blocked /
 * deadline_miss counters and queue-depth log2-histograms, collected
 * in per-stage shards (each written only by the owning worker) and
 * merged into the session registry after the join.
 */

#ifndef SNIP_CORE_PIPELINE_H
#define SNIP_CORE_PIPELINE_H

#include "core/simulation.h"

namespace snip {
namespace core {

/**
 * One pipelined session run. Construct and call run() once; entered
 * by runSession() when cfg.pipeline.enabled.
 */
class Pipeline
{
  public:
    Pipeline(games::Game &game, Scheme &scheme,
             const SimulationConfig &cfg);

    /**
     * Play the session through the staged runtime and return the
     * (bitwise sequential-identical) result. Worker exceptions are
     * rethrown here on the calling thread after the stages wind
     * down.
     */
    SessionResult run();

  private:
    games::Game &game_;
    Scheme &scheme_;
    const SimulationConfig &cfg_;
};

}  // namespace core
}  // namespace snip

#endif  // SNIP_CORE_PIPELINE_H
