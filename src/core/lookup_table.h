/**
 * @file
 * The two straw-man lookup-table designs the paper analyzes before
 * SNIP:
 *
 *  - NaiveTableAnalysis (§III, Fig. 6): every record is the union of
 *    all input locations (and optionally all output locations); an
 *    execution is covered when its full input record was observed
 *    before. Tracks the (table size, execution coverage) curve —
 *    the curve that runs into gigabytes.
 *
 *  - InEventTableAnalysis (§IV-B, Fig. 8): records keyed on the
 *    In.Event fields only. Small, but the same key can map to
 *    multiple outputs (ambiguity); short-circuiting with the
 *    majority output produces erroneous executions whose category
 *    breakdown (Out.Temp vs Out.History/Extern) decides viability.
 *
 * Both work on profiles; sizes are computed analytically (entries x
 * row bytes), never materialized — a 64 GB "table" is a number, not
 * an allocation.
 */

#ifndef SNIP_CORE_LOOKUP_TABLE_H
#define SNIP_CORE_LOOKUP_TABLE_H

#include <cstdint>
#include <vector>

#include "core/output_diff.h"
#include "trace/profile.h"

namespace snip {
namespace core {

/** One point of the Fig. 6 curve. */
struct CoveragePoint {
    /** Instruction-weighted fraction of execution covered. */
    double coverage = 0.0;
    /** Table size with input-only rows (bytes). */
    uint64_t input_bytes = 0;
    /** Table size with input+output rows (bytes). */
    uint64_t input_output_bytes = 0;
    /** Distinct records stored. */
    uint64_t entries = 0;
};

/** §III union-of-locations table analysis. */
class NaiveTableAnalysis
{
  public:
    /**
     * Scan @p profile in record order, inserting each distinct full
     * input record and noting which executions would have hit.
     * @param curve_points Number of curve samples to keep.
     */
    NaiveTableAnalysis(const trace::Profile &profile,
                       const events::FieldSchema &schema,
                       size_t curve_points = 64);

    /** The (size, coverage) trajectory. */
    const std::vector<CoveragePoint> &curve() const { return curve_; }

    /** Final coverage after the whole profile. */
    double finalCoverage() const;

    /** Bytes of one input-only row (union of input locations). */
    uint64_t rowInputBytes() const { return rowInputBytes_; }
    /** Bytes of one input+output row. */
    uint64_t rowTotalBytes() const { return rowTotalBytes_; }

    /**
     * Table size (input+output rows) needed to reach a coverage
     * level; returns 0 when the profile never reaches it.
     */
    uint64_t bytesForCoverage(double coverage) const;

  private:
    std::vector<CoveragePoint> curve_;
    uint64_t rowInputBytes_ = 0;
    uint64_t rowTotalBytes_ = 0;
};

/** Result of the §IV-B In.Event-only analysis. */
struct InEventTableResult {
    /** Distinct In.Event keys stored. */
    uint64_t entries = 0;
    /** Table bytes (In.Event key + outputs per row). */
    uint64_t table_bytes = 0;
    /** Naive input+output table bytes on the same profile. */
    uint64_t naive_bytes = 0;
    /** Instruction-weighted fraction of executions hitting a key
     *  seen before (matchable at all). */
    double coverage = 0.0;
    /** Fraction of execution hitting keys with >1 distinct output
     *  (cannot know which output is right — Fig. 8a's 22%). */
    double ambiguous = 0.0;
    /** Fraction of *hits* whose majority-output short-circuit would
     *  be wrong. */
    double erroneous_hit_fraction = 0.0;
    /** Of erroneous short-circuits: damage confined to Out.Temp. */
    double err_temp_only = 0.0;
    /** Of erroneous short-circuits: Out.History damaged. */
    double err_history = 0.0;
    /** Of erroneous short-circuits: Out.Extern damaged. */
    double err_extern = 0.0;
};

/** Run the In.Event-only analysis over a profile. */
InEventTableResult analyzeInEventTable(const trace::Profile &profile,
                                       const events::FieldSchema &schema);

}  // namespace core
}  // namespace snip

#endif  // SNIP_CORE_LOOKUP_TABLE_H
