/**
 * @file
 * The evaluated schemes (paper §VII): Baseline, Max CPU
 * (function-granularity CPU memoization upper bound, [3,14,42]),
 * Max IP (IP-invocation skipping + aggressive IP sleep, [43]),
 * SNIP (the deployed PFI lookup table), and No-Overheads SNIP
 * (SNIP with free lookups). A Scheme is a *decision policy*: for
 * every delivered event it decides what part of the end-to-end
 * processing can be skipped and which outputs to substitute; the
 * Simulation does all the energy charging and error accounting.
 */

#ifndef SNIP_CORE_SCHEME_H
#define SNIP_CORE_SCHEME_H

#include <memory>
#include <span>
#include <unordered_set>

#include "core/snip.h"
#include "events/event.h"
#include "games/game.h"

namespace snip {
namespace core {

/** Which scheme is running. */
enum class SchemeKind {
    Baseline = 0,
    MaxCpu,
    MaxIp,
    Snip,
    NoOverheads,
};

/** Display name. */
const char *schemeName(SchemeKind k);

/** What a scheme decided for one event. */
struct Decision {
    /** Skip the whole end-to-end processing, applying outputs. */
    bool shortcircuit = false;
    /** Outputs to apply when short-circuiting (may be wrong). */
    std::vector<events::FieldValue> outputs;
    /** Fraction of CPU instructions skipped (Max CPU partial). */
    double cpu_skip_fraction = 0.0;
    /** Skip the handler's IP invocations (Max IP). */
    bool skip_ips = false;
    /** Lookup scan volume to charge (0 = no lookup happened). */
    uint64_t lookup_bytes = 0;
    /** Candidate entries compared. */
    uint32_t lookup_candidates = 0;
    /** Charge the lookup cost (false for No-Overheads). */
    bool charge_lookup = true;
    /** A table lookup ran (SNIP schemes; baselines never look up). */
    bool lookup_ran = false;
    /** The lookup matched an entry. */
    bool lookup_hit = false;
    /**
     * The hit was diverted to a watchdog audit: processed fully so
     * observe() can compare the table's outputs to ground truth.
     */
    bool audited = false;
};

/**
 * Probes resolved ahead of the decide loop by resolveProbes(),
 * adopted into the scheme by adoptProbes(). The pipelined session
 * runtime's decide stage fills one of these per event block on its
 * own thread; the execute stage hands it to the scheme just before
 * draining the block, which reproduces exactly what a sequential
 * prepareBatch() call would have done.
 */
struct PreparedProbes {
    /** Resolved probe per event, in delivery order. */
    std::vector<FrozenProbe> probes;
    /** Sequence number of the event each probe belongs to. */
    std::vector<uint64_t> seqs;

    void
    clear()
    {
        probes.clear();
        seqs.clear();
    }
};

/** Decision policy interface. */
class Scheme
{
  public:
    virtual ~Scheme() = default;

    /** Which scheme this is. */
    virtual SchemeKind kind() const = 0;

    /**
     * Decide how to process @p ev. @p truth is the ground-truth
     * execution the simulator computed; implementations may only
     * use the parts a real runtime would know (necessary-input
     * hashes stand in for the hardware memoizer's own tables).
     */
    virtual Decision decide(const games::Game &game,
                            const events::EventObject &ev,
                            const games::HandlerExecution &truth) = 0;

    /** Observe a fully processed execution (learn/insert). */
    virtual void observe(const games::HandlerExecution &truth)
    {
        (void)truth;
    }

    /**
     * Preferred event-block size for batched deciding (0 = scalar
     * only). runSession collects up to this many same-frame events,
     * calls prepareBatch() once, then runs the normal per-event
     * decide/observe protocol over the block.
     */
    virtual uint32_t batchBlock() const { return 0; }

    /**
     * Hint: the next events, in delivery order, before they are
     * decided one by one. Schemes may precompute whatever depends
     * only on the event objects and immutable state (SNIP resolves
     * its frozen index probes type-grouped and prefetched); the
     * per-event decide() must return bitwise-identical Decisions
     * with or without the hint.
     */
    virtual void prepareBatch(std::span<const events::EventObject> evs)
    {
        (void)evs;
    }

    /**
     * Stage-2 pipeline hook: resolve whatever prepareBatch() would
     * precompute for @p evs into caller-owned storage, without
     * touching any scheme state. Must be const and safe to call
     * concurrently with decide()/observe() running on another
     * thread (it may only read immutable state — for SNIP, the
     * shared frozen arena). Returns false when the scheme has
     * nothing to precompute (out is left untouched); then the
     * caller skips adoptProbes() and decide() takes its normal
     * unprepared path, exactly as a sequential session would.
     */
    virtual bool
    resolveProbes(std::span<const events::EventObject> evs,
                  PreparedProbes &out,
                  BatchLookupScratch &scratch) const
    {
        (void)evs;
        (void)out;
        (void)scratch;
        return false;
    }

    /**
     * Adopt probes resolved by resolveProbes() as if
     * prepareBatch(evs) had just run on this thread. Called by the
     * pipeline's execute stage immediately before the block's
     * events are decided; prepareBatch(evs) must be equivalent to
     * resolveProbes(evs, p, scratch) + adoptProbes(move(p)).
     */
    virtual void adoptProbes(PreparedProbes &&p) { (void)p; }

    /**
     * Decide a block of events in one call. Exactly equivalent to
     *
     *   for i: out[i] = decide(game, evs[i], truths[i]);
     *          if (!out[i].shortcircuit) observe(truths[i]);
     *
     * i.e. observes are performed internally, in original event
     * order (the protocol runSession follows). Requires the game's
     * state to be static across the block — decideBatch never
     * applies outputs, so within one call that holds by
     * construction; callers interleaving applyOutputs must use the
     * scalar path. Decisions are bitwise-identical to the scalar
     * loop above.
     */
    virtual void decideBatch(const games::Game &game,
                             std::span<const events::EventObject> evs,
                             std::span<const games::HandlerExecution>
                                 truths,
                             std::span<Decision> out);

    /** Idle seconds after which an IP may be power-gated. */
    virtual double ipSleepTimeout() const { return 0.5; }
};

/** Baseline: process everything. */
class BaselineScheme : public Scheme
{
  public:
    SchemeKind kind() const override { return SchemeKind::Baseline; }
    Decision decide(const games::Game &, const events::EventObject &,
                    const games::HandlerExecution &) override;
};

/**
 * Max CPU: when the necessary inputs of an execution repeat a prior
 * one, the repeatable fraction of its *CPU* work is skipped
 * (instruction/function-granularity reuse); IP invocations still
 * run. No lookup overheads are charged — it is an upper bound.
 */
class MaxCpuScheme : public Scheme
{
  public:
    SchemeKind kind() const override { return SchemeKind::MaxCpu; }
    Decision decide(const games::Game &, const events::EventObject &,
                    const games::HandlerExecution &truth) override;
    void observe(const games::HandlerExecution &truth) override;

  private:
    std::unordered_set<uint64_t> seen_;
};

/**
 * Max IP: IP invocations of repeating executions are skipped (their
 * results are reusable) and idle IPs are power-gated aggressively.
 * CPU work still runs. Upper bound: no overheads charged.
 */
class MaxIpScheme : public Scheme
{
  public:
    SchemeKind kind() const override { return SchemeKind::MaxIp; }
    Decision decide(const games::Game &, const events::EventObject &,
                    const games::HandlerExecution &truth) override;
    void observe(const games::HandlerExecution &truth) override;
    double ipSleepTimeout() const override { return 0.02; }

  private:
    std::unordered_set<uint64_t> seen_;
    /** Hash of the last decided event, inserted by observe() — a
     *  decide() that mutated seen_ would double-insert under a
     *  pipelined caller that separates the two. */
    uint64_t pendingHash_ = 0;
    bool hasPending_ = false;
};

/** SNIP runtime knobs. */
struct SnipRuntimeConfig {
    /**
     * Whether fully processed events are inserted into the table at
     * runtime (device-side table growth between cloud re-learns).
     */
    bool online_fill = true;

    /**
     * Audit watchdog (paper §VII-B future extension: "clear the PFI
     * lookup table if it detects the error rate to worsen"). Every
     * N-th would-be short-circuit is processed fully anyway and the
     * table's outputs are checked against ground truth; when the
     * audited error rate over a sliding window exceeds the
     * threshold, the table is cleared (falling back to online fill
     * until the next cloud re-learn). 0 disables auditing.
     */
    uint32_t audit_every = 0;
    /** Audits per error-rate window. */
    uint32_t audit_window = 64;
    /** Clear the table when audited error exceeds this rate. */
    double audit_clear_threshold = 0.05;
    /**
     * Optional metrics sink (nullptr = observability off) for the
     * scheme's own events: watchdog audits/failures/clears and
     * online-fill inserts. Counters are resolved once at
     * construction, so the per-event cost when disabled is one null
     * check. Per-lookup outcomes are recorded by runSession from the
     * Decision, not here.
     */
    obs::Registry *obs = nullptr;
};

/**
 * SNIP: end-to-end short-circuiting via the deployed table.
 *
 * The scheme serves lookups from the model's immutable FrozenTable
 * (freezing the mutable table on construction if the model was not
 * already frozen). Online fill goes into a small per-scheme mutable
 * *overlay* MemoTable with the same selections, consulted only on a
 * frozen miss — the frozen arena itself is never mutated, so it can
 * be shared across sessions and threads. Hit accounting lives in a
 * scheme-owned dense counter array indexed by frozen entry ordinal
 * (race-free by construction; the arena has no mutable hit field).
 * The watchdog's "clear the table" action deactivates the frozen
 * layout and falls back to the (cleared) overlay until re-learn.
 */
class SnipScheme : public Scheme
{
  public:
    /**
     * @param model Deployed model (borrowed; must outlive this).
     *        Must have a table in at least one layout; freeze() is
     *        called on it, so `model.frozen` is set on return.
     * @param charge_overheads False builds the No-Overheads bound.
     */
    SnipScheme(SnipModel &model, SnipRuntimeConfig cfg = {},
               bool charge_overheads = true);

    /**
     * Const overload for models already in deployable form: @p model
     * must have `frozen` set (freeze() it first, or deployModel()
     * did) — a scheme never mutates a const model, so an unfrozen
     * one is a fatal() usage error, not a silent freeze.
     */
    SnipScheme(const SnipModel &model, SnipRuntimeConfig cfg = {},
               bool charge_overheads = true);

    SchemeKind kind() const override
    {
        return chargeOverheads_ ? SchemeKind::Snip
                                : SchemeKind::NoOverheads;
    }
    Decision decide(const games::Game &game,
                    const events::EventObject &ev,
                    const games::HandlerExecution &truth) override;
    void observe(const games::HandlerExecution &truth) override;

    /** SNIP decides blocks natively: prepareBatch() resolves the
     *  frozen index probes type-grouped (probeBatch), which decide()
     *  then consumes per event; decideBatch() runs the whole frozen
     *  half as one lookupBatch pass. Both are bitwise-identical to
     *  the scalar path. */
    uint32_t batchBlock() const override { return 32; }
    void prepareBatch(
        std::span<const events::EventObject> evs) override;
    bool resolveProbes(std::span<const events::EventObject> evs,
                       PreparedProbes &out,
                       BatchLookupScratch &scratch) const override;
    void adoptProbes(PreparedProbes &&p) override;
    void decideBatch(const games::Game &game,
                     std::span<const events::EventObject> evs,
                     std::span<const games::HandlerExecution> truths,
                     std::span<Decision> out) override;

    /** The frozen table lookups are served from (inspection). */
    const FrozenTable &frozen() const { return *frozen_; }
    /** False after a watchdog clear (overlay-only fallback). */
    bool frozenActive() const { return frozenActive_; }
    /** Per-frozen-entry hit counts, indexed by entry ordinal. */
    const std::vector<uint64_t> &hitCounts() const
    {
        return hitCounts_;
    }
    /** Entries accumulated by online fill (overlay layout). */
    size_t overlayEntries() const { return overlay_.entryCount(); }
    /** Bytes of the deployed layout(s) serving lookups now. */
    uint64_t deployedTableBytes() const;
    /** Export `table.*` gauges for the layout serving lookups. */
    void recordTableStats(obs::Registry &reg) const;

    /** Audits performed so far. */
    uint64_t auditsRun() const { return auditsRun_; }
    /** Audits that caught a wrong table output. */
    uint64_t auditsFailed() const { return auditsFailed_; }
    /** Times the watchdog cleared the table. */
    uint64_t tableClears() const { return tableClears_; }

  private:
    const SnipModel &model_;
    SnipRuntimeConfig cfg_;
    bool chargeOverheads_;

    /** Immutable deployed arena (shared with the model). */
    std::shared_ptr<const FrozenTable> frozen_;
    /** Mutable online-fill overlay (frozen's selections). */
    MemoTable overlay_;
    /** Cleared by the watchdog: lookups become overlay-only. */
    bool frozenActive_ = true;
    /** Dense per-entry hit counters (frozen entry ordinals). */
    std::vector<uint64_t> hitCounts_;

    /** Watchdog state. */
    uint64_t hitCounter_ = 0;
    uint64_t auditsRun_ = 0;
    uint64_t auditsFailed_ = 0;
    uint64_t tableClears_ = 0;
    uint32_t windowAudits_ = 0;
    uint32_t windowFailures_ = 0;
    bool auditPending_ = false;
    std::vector<events::FieldValue> auditOutputs_;

    /** Pre-resolved counters (null when cfg_.obs is null). */
    obs::Counter *obsAudits_ = nullptr;
    obs::Counter *obsAuditFailures_ = nullptr;
    obs::Counter *obsTableClears_ = nullptr;
    obs::Counter *obsOnlineInserts_ = nullptr;

    /** Reusable gather buffers: zero-allocation lookups. */
    LookupScratch scratch_;

    /** Shared ctor tail: overlay selections, hit counters, obs. */
    void initRuntime();

    /** Shared decide body: @p pre, when set, is the event's frozen
     *  lookup precomputed by decideBatch (ignored after a watchdog
     *  clear). */
    Decision decideImpl(const games::Game &game,
                        const events::EventObject &ev,
                        const FrozenLookup *pre);

    /** Batched-path state: probes resolved by prepareBatch() /
     *  adoptProbes(), keyed by event seq and consumed in order by
     *  decide(); the batch scratch and lookup buffer back
     *  decideBatch(); preparedTmp_ recycles the sequential
     *  prepareBatch() path's buffers across blocks. */
    BatchLookupScratch batchScratch_;
    PreparedProbes preparedTmp_;
    std::vector<FrozenProbe> prepared_;
    std::vector<uint64_t> preparedSeqs_;
    size_t preparedCursor_ = 0;
    std::vector<FrozenLookup> batchLookups_;
};

/** Construct a scheme by kind (Snip/NoOverheads need a model). */
std::unique_ptr<Scheme> makeScheme(SchemeKind kind,
                                   SnipModel *model = nullptr);

}  // namespace core
}  // namespace snip

#endif  // SNIP_CORE_SCHEME_H
