/**
 * @file
 * The SNIP pipeline facade (paper Fig. 10): from a recorded profile
 * to a deployable model — per-event-type PFI feature selection plus
 * the initial memoization table — with optional developer overrides
 * (Option 1 of §V-B).
 */

#ifndef SNIP_CORE_SNIP_H
#define SNIP_CORE_SNIP_H

#include <memory>
#include <string>
#include <vector>

#include "core/frozen_table.h"
#include "core/memo_table.h"
#include "ml/feature_selection.h"
#include "trace/profile.h"

namespace snip {
namespace core {

/** Developer overrides fed into selection (§V-B Option 1). */
struct DeveloperOverrides {
    /** Field names that must stay in the necessary set. */
    std::vector<std::string> force_keep;
    /**
     * Field names whose erroneous short-circuiting the developer
     * marked tolerable (Out.Temp-like). Reserved for error-budget
     * accounting in reports.
     */
    std::vector<std::string> tolerate_errors;
};

/** Pipeline knobs. */
struct SnipConfig {
    /** Per-type wrong-hit error budget for selection. */
    double max_error = 0.002;
    /** Conditional (wrong hits / hits) budget for selection. */
    double max_conditional_error = 0.012;
    /** PFI permutation repeats. */
    int pfi_repeats = 2;
    uint64_t seed = 0x51139ULL;
    /**
     * Worker threads for the Shrink phase (PFI task fan-out inside
     * selection); 0 = SNIP_THREADS / all cores. Selection output is
     * bitwise identical for any value.
     */
    unsigned threads = 0;
    DeveloperOverrides overrides;
    /**
     * Minimum records of a type required to attempt selection;
     * sparser types are left undeployed (processed as baseline).
     */
    size_t min_records_per_type = 32;
    /**
     * Optional metrics sink (nullptr = observability off): the
     * Shrink-phase spans (`span.shrink` and nested select / train /
     * holdout / pfi), per-type counters, and final table gauges.
     * Never alters the built model.
     */
    obs::Registry *obs = nullptr;
};

/** Per-event-type selection outcome. */
struct TypeModel {
    events::EventType type = events::EventType::Touch;
    ml::SelectionResult selection;
    /** Profiled records of this type behind the selection — the
     *  evidence weight of selection.selected_error. */
    uint64_t records = 0;
};

/** The deployable artifact: selections + initial table. */
struct SnipModel {
    std::string game;
    std::vector<TypeModel> types;
    /** Mutable build-side table pre-filled from the profile (null on
     *  a device that deployed a zero-copy v2 package). */
    std::unique_ptr<MemoTable> table;
    /**
     * Immutable deploy-side form (frozen_table.h). Set by freeze(),
     * or directly by deployModel() when a v2 package is attached
     * zero-copy. The runtime (SnipScheme) looks up against this.
     */
    std::shared_ptr<const FrozenTable> frozen;

    /** Sum of selected necessary-input bytes across types. */
    uint64_t selectedBytes() const;

    /**
     * Ensure `frozen` is populated (idempotent): freezes `table`
     * when a frozen form is not already attached. Panics if the
     * model has neither.
     */
    void freeze();

    /** Whether a lookup table is deployed in either layout. */
    bool deployed() const { return table != nullptr || frozen != nullptr; }

    /** Deployed-table payload bytes (frozen arena preferred). */
    uint64_t tableBytes() const;

    /**
     * Export `table.*` gauges for whichever layout the runtime
     * would serve lookups from (frozen when present).
     */
    void recordTableStats(obs::Registry &reg) const;
};

/**
 * Run PFI selection per event type on @p profile and build the
 * deployable table. @p game supplies the schema and (for override
 * name resolution) the field registry.
 */
SnipModel buildSnipModel(const trace::Profile &profile,
                         const games::Game &game,
                         const SnipConfig &cfg = {});

}  // namespace core
}  // namespace snip

#endif  // SNIP_CORE_SNIP_H
