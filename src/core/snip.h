/**
 * @file
 * The SNIP pipeline facade (paper Fig. 10): from a recorded profile
 * to a deployable model — per-event-type PFI feature selection plus
 * the initial memoization table — with optional developer overrides
 * (Option 1 of §V-B).
 */

#ifndef SNIP_CORE_SNIP_H
#define SNIP_CORE_SNIP_H

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "core/frozen_table.h"
#include "core/memo_table.h"
#include "ml/chunked_dataset.h"
#include "ml/feature_selection.h"
#include "trace/profile.h"

namespace snip {
namespace core {

/** Developer overrides fed into selection (§V-B Option 1). */
struct DeveloperOverrides {
    /** Field names that must stay in the necessary set. */
    std::vector<std::string> force_keep;
    /**
     * Field names whose erroneous short-circuiting the developer
     * marked tolerable (Out.Temp-like). Reserved for error-budget
     * accounting in reports.
     */
    std::vector<std::string> tolerate_errors;
};

struct ShrinkCaches;

/** Pipeline knobs. */
struct SnipConfig {
    /** Per-type wrong-hit error budget for selection. */
    double max_error = 0.002;
    /** Conditional (wrong hits / hits) budget for selection. */
    double max_conditional_error = 0.012;
    /** PFI permutation repeats. */
    int pfi_repeats = 2;
    uint64_t seed = 0x51139ULL;
    /**
     * Worker threads for the Shrink phase (PFI task fan-out inside
     * selection); 0 = SNIP_THREADS / all cores. Selection output is
     * bitwise identical for any value.
     */
    unsigned threads = 0;
    DeveloperOverrides overrides;
    /**
     * Minimum records of a type required to attempt selection;
     * sparser types are left undeployed (processed as baseline).
     */
    size_t min_records_per_type = 32;
    /**
     * Optional metrics sink (nullptr = observability off): the
     * Shrink-phase spans (`span.shrink` and nested select / train /
     * holdout / pfi), per-type counters, and final table gauges.
     * Never alters the built model.
     */
    obs::Registry *obs = nullptr;
    /**
     * Optional persistent caches (nullptr = off): skip per-type
     * selection and per-refresh PFI whose inputs are bit-identical
     * to a previous build. Never alters the built model.
     */
    ShrinkCaches *caches = nullptr;
};

/** Per-event-type selection outcome. */
struct TypeModel {
    events::EventType type = events::EventType::Touch;
    ml::SelectionResult selection;
    /** Profiled records of this type behind the selection — the
     *  evidence weight of selection.selected_error. */
    uint64_t records = 0;
};

/**
 * Persistent caches for incremental Shrink across buildSnipModel
 * calls (continuous-learning epochs). Exactness is key-based: a
 * type's cached selection replays only when the content digest of
 * its dataset AND the selection-relevant config are unchanged, and
 * the nested PFI cache keys cover everything an importance is a
 * function of (see ml::pfiCacheKey) — so enabling the caches never
 * changes a produced model, it only skips recomputing identical
 * results (counters shrink.types_cached / shrink.pfi.cols_cached).
 */
struct ShrinkCaches {
    struct TypeCache {
        bool valid = false;
        /** Digest of the dataset + config the model was built from. */
        uint64_t dataset_key = 0;
        TypeModel model;
        /** PFI results, reusable even when the selection re-runs. */
        ml::PfiCache pfi;
    };
    std::array<TypeCache, events::kNumEventTypes> types{};
};

/** The deployable artifact: selections + initial table. */
struct SnipModel {
    std::string game;
    std::vector<TypeModel> types;
    /** Mutable build-side table pre-filled from the profile (null on
     *  a device that deployed a zero-copy v2 package). */
    std::unique_ptr<MemoTable> table;
    /**
     * Immutable deploy-side form (frozen_table.h). Set by freeze(),
     * or directly by deployModel() when a v2 package is attached
     * zero-copy. The runtime (SnipScheme) looks up against this.
     */
    std::shared_ptr<const FrozenTable> frozen;

    /** Sum of selected necessary-input bytes across types. */
    uint64_t selectedBytes() const;

    /**
     * Ensure `frozen` is populated (idempotent): freezes `table`
     * when a frozen form is not already attached. Panics if the
     * model has neither.
     */
    void freeze();

    /** Whether a lookup table is deployed in either layout. */
    bool deployed() const { return table != nullptr || frozen != nullptr; }

    /** Deployed-table payload bytes (frozen arena preferred). */
    uint64_t tableBytes() const;

    /**
     * Export `table.*` gauges for whichever layout the runtime
     * would serve lookups from (frozen when present).
     */
    void recordTableStats(obs::Registry &reg) const;
};

/**
 * Run PFI selection per event type on @p profile and build the
 * deployable table. @p game supplies the schema and (for override
 * name resolution) the field registry.
 */
SnipModel buildSnipModel(const trace::Profile &profile,
                         const games::Game &game,
                         const SnipConfig &cfg = {});

/**
 * Out-of-core variant: run the same pipeline over the training
 * sections of a (typically mmap-backed) columnar trace, training
 * through bounded-RSS ml::ChunkedDataset views instead of an
 * in-memory Dataset. Selections and the pre-filled table are
 * bitwise identical to the in-memory path over the same records
 * (the table prefill walks types in enum order; MemoTable buckets
 * are per-type with insertion order preserved within a type, so
 * grouped insertion builds the same table as profile order).
 * Errors (rather than panicking) on a trace without training
 * sections or one recorded against a different game.
 */
util::Result<SnipModel>
buildSnipModel(std::shared_ptr<const trace::ColumnarLog> tlog,
               const games::Game &game, const SnipConfig &cfg = {},
               const ml::ChunkedConfig &chunked = {});

}  // namespace core
}  // namespace snip

#endif  // SNIP_CORE_SNIP_H
