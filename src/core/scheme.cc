#include "core/scheme.h"

#include "util/logging.h"

namespace snip {
namespace core {

const char *
schemeName(SchemeKind k)
{
    switch (k) {
      case SchemeKind::Baseline: return "Baseline";
      case SchemeKind::MaxCpu: return "Max CPU";
      case SchemeKind::MaxIp: return "Max IP";
      case SchemeKind::Snip: return "SNIP";
      case SchemeKind::NoOverheads: return "No Overheads";
    }
    return "?";
}

Decision
BaselineScheme::decide(const games::Game &, const events::EventObject &,
                       const games::HandlerExecution &)
{
    return {};
}

Decision
MaxCpuScheme::decide(const games::Game &, const events::EventObject &,
                     const games::HandlerExecution &truth)
{
    Decision d;
    d.charge_lookup = false;
    if (seen_.count(truth.necessary_hash))
        d.cpu_skip_fraction = truth.maxcpu_fraction;
    return d;
}

void
MaxCpuScheme::observe(const games::HandlerExecution &truth)
{
    seen_.insert(truth.necessary_hash);
}

Decision
MaxIpScheme::decide(const games::Game &, const events::EventObject &ev,
                    const games::HandlerExecution &)
{
    Decision d;
    d.charge_lookup = false;
    // IP results (rendered tiles, decoded blocks) are reusable only
    // when the triggering event object repeats exactly.
    if (seen_.count(events::hashFields(ev.fields)))
        d.skip_ips = true;
    seen_.insert(events::hashFields(ev.fields));
    return d;
}

void
MaxIpScheme::observe(const games::HandlerExecution &)
{
}

SnipScheme::SnipScheme(SnipModel &model, SnipRuntimeConfig cfg,
                       bool charge_overheads)
    : model_(model), cfg_(cfg), chargeOverheads_(charge_overheads)
{
    if (!model_.table)
        util::fatal("SnipScheme: model has no table");
    if (cfg_.obs) {
        obsAudits_ = &cfg_.obs->counter("decide.audits");
        obsAuditFailures_ =
            &cfg_.obs->counter("decide.audit_failures");
        obsTableClears_ = &cfg_.obs->counter("decide.table_clears");
        obsOnlineInserts_ =
            &cfg_.obs->counter("decide.online_inserts");
    }
}

Decision
SnipScheme::decide(const games::Game &game, const events::EventObject &ev,
                   const games::HandlerExecution &)
{
    Decision d;
    d.charge_lookup = chargeOverheads_;
    auditPending_ = false;
    MemoLookup res = model_.table->lookup(ev, game, scratch_);
    d.lookup_ran = true;
    d.lookup_hit = res.hit;
    d.lookup_bytes = res.bytes_scanned;
    d.lookup_candidates = res.candidates;
    if (res.hit) {
        model_.table->recordHit(res);
        // Audit watchdog: periodically let a would-be hit run at
        // full cost so the table's output can be checked against
        // ground truth in observe().
        if (cfg_.audit_every > 0 &&
            ++hitCounter_ % cfg_.audit_every == 0) {
            auditPending_ = true;
            d.audited = true;
            auditOutputs_ = res.entry->outputs;
            return d;  // processed fully; observe() compares
        }
        d.shortcircuit = true;
        d.outputs = res.entry->outputs;
    }
    return d;
}

void
SnipScheme::observe(const games::HandlerExecution &truth)
{
    if (auditPending_) {
        auditPending_ = false;
        ++auditsRun_;
        ++windowAudits_;
        if (obsAudits_)
            obsAudits_->add(1);
        if (auditOutputs_ != truth.outputs) {
            ++auditsFailed_;
            ++windowFailures_;
            if (obsAuditFailures_)
                obsAuditFailures_->add(1);
        }
        if (windowAudits_ >= cfg_.audit_window) {
            double rate = static_cast<double>(windowFailures_) /
                          static_cast<double>(windowAudits_);
            if (rate > cfg_.audit_clear_threshold) {
                model_.table->clear();
                ++tableClears_;
                if (obsTableClears_)
                    obsTableClears_->add(1);
                util::warn("snip watchdog: audited error rate %.1f%% "
                           "exceeded %.1f%%; table cleared",
                           rate * 100.0,
                           cfg_.audit_clear_threshold * 100.0);
            }
            windowAudits_ = 0;
            windowFailures_ = 0;
        }
    }
    if (cfg_.online_fill) {
        model_.table->insert(truth);
        if (obsOnlineInserts_)
            obsOnlineInserts_->add(1);
    }
}

std::unique_ptr<Scheme>
makeScheme(SchemeKind kind, SnipModel *model)
{
    switch (kind) {
      case SchemeKind::Baseline:
        return std::make_unique<BaselineScheme>();
      case SchemeKind::MaxCpu:
        return std::make_unique<MaxCpuScheme>();
      case SchemeKind::MaxIp:
        return std::make_unique<MaxIpScheme>();
      case SchemeKind::Snip:
      case SchemeKind::NoOverheads:
        if (!model)
            util::fatal("makeScheme(%s) requires a SnipModel",
                        schemeName(kind));
        return std::make_unique<SnipScheme>(
            *model, SnipRuntimeConfig{},
            kind == SchemeKind::Snip);
    }
    util::panic("makeScheme: bad kind");
}

}  // namespace core
}  // namespace snip
