#include "core/scheme.h"

#include "util/logging.h"

namespace snip {
namespace core {

const char *
schemeName(SchemeKind k)
{
    switch (k) {
      case SchemeKind::Baseline: return "Baseline";
      case SchemeKind::MaxCpu: return "Max CPU";
      case SchemeKind::MaxIp: return "Max IP";
      case SchemeKind::Snip: return "SNIP";
      case SchemeKind::NoOverheads: return "No Overheads";
    }
    return "?";
}

Decision
BaselineScheme::decide(const games::Game &, const events::EventObject &,
                       const games::HandlerExecution &)
{
    return {};
}

Decision
MaxCpuScheme::decide(const games::Game &, const events::EventObject &,
                     const games::HandlerExecution &truth)
{
    Decision d;
    d.charge_lookup = false;
    if (seen_.count(truth.necessary_hash))
        d.cpu_skip_fraction = truth.maxcpu_fraction;
    return d;
}

void
MaxCpuScheme::observe(const games::HandlerExecution &truth)
{
    seen_.insert(truth.necessary_hash);
}

Decision
MaxIpScheme::decide(const games::Game &, const events::EventObject &ev,
                    const games::HandlerExecution &)
{
    Decision d;
    d.charge_lookup = false;
    // IP results (rendered tiles, decoded blocks) are reusable only
    // when the triggering event object repeats exactly.
    if (seen_.count(events::hashFields(ev.fields)))
        d.skip_ips = true;
    seen_.insert(events::hashFields(ev.fields));
    return d;
}

void
MaxIpScheme::observe(const games::HandlerExecution &)
{
}

namespace {

/** Freeze the model (idempotent) and hand back the shared arena. */
std::shared_ptr<const FrozenTable>
frozenOf(SnipModel &model)
{
    if (!model.table && !model.frozen)
        util::fatal("SnipScheme: model has no table");
    model.freeze();
    return model.frozen;
}

}  // namespace

SnipScheme::SnipScheme(SnipModel &model, SnipRuntimeConfig cfg,
                       bool charge_overheads)
    : model_(model), cfg_(cfg), chargeOverheads_(charge_overheads),
      frozen_(frozenOf(model)), overlay_(frozen_->schema())
{
    for (int t = 0; t < events::kNumEventTypes; ++t) {
        events::EventType type = static_cast<events::EventType>(t);
        auto selected = frozen_->selectedVector(type);
        if (!selected.empty())
            overlay_.setSelected(type, std::move(selected));
    }
    hitCounts_.assign(frozen_->entryCount(), 0);
    if (cfg_.obs) {
        obsAudits_ = &cfg_.obs->counter("decide.audits");
        obsAuditFailures_ =
            &cfg_.obs->counter("decide.audit_failures");
        obsTableClears_ = &cfg_.obs->counter("decide.table_clears");
        obsOnlineInserts_ =
            &cfg_.obs->counter("decide.online_inserts");
    }
}

Decision
SnipScheme::decide(const games::Game &game, const events::EventObject &ev,
                   const games::HandlerExecution &)
{
    Decision d;
    d.charge_lookup = chargeOverheads_;
    auditPending_ = false;
    d.lookup_ran = true;

    // Frozen-first lookup with the overlay consulted only on a miss.
    // The scan is equivalent to the old single-table scan: frozen
    // buckets hold the profile entries in their original insertion
    // order and overlay buckets the online-filled ones that would
    // have followed them, and the shared gather cost (the type's
    // selected bytes, charged by both lookups) is counted once.
    bool hit = false;
    if (frozenActive_) {
        FrozenLookup fres = frozen_->lookup(ev, game, scratch_);
        d.lookup_bytes = fres.bytes_scanned;
        d.lookup_candidates = fres.candidates;
        if (fres.hit) {
            hit = true;
            ++hitCounts_[fres.entry_ordinal];
            d.outputs.resize(fres.nout);
            for (uint32_t i = 0; i < fres.nout; ++i)
                d.outputs[i] = {fres.out_ids[i],
                                fres.out_values[i]};
        } else if (overlay_.entryCount(ev.type) > 0) {
            MemoLookup ores = overlay_.lookup(ev, game, scratch_);
            d.lookup_bytes += ores.bytes_scanned -
                              overlay_.selectedBytes(ev.type);
            d.lookup_candidates += ores.candidates;
            if (ores.hit) {
                hit = true;
                d.outputs = ores.entry->outputs;
            }
        }
    } else {
        MemoLookup ores = overlay_.lookup(ev, game, scratch_);
        d.lookup_bytes = ores.bytes_scanned;
        d.lookup_candidates = ores.candidates;
        if (ores.hit) {
            hit = true;
            d.outputs = ores.entry->outputs;
        }
    }

    d.lookup_hit = hit;
    if (hit) {
        // Audit watchdog: periodically let a would-be hit run at
        // full cost so the table's output can be checked against
        // ground truth in observe().
        if (cfg_.audit_every > 0 &&
            ++hitCounter_ % cfg_.audit_every == 0) {
            auditPending_ = true;
            d.audited = true;
            auditOutputs_ = std::move(d.outputs);
            d.outputs.clear();
            return d;  // processed fully; observe() compares
        }
        d.shortcircuit = true;
    }
    return d;
}

void
SnipScheme::observe(const games::HandlerExecution &truth)
{
    if (auditPending_) {
        auditPending_ = false;
        ++auditsRun_;
        ++windowAudits_;
        if (obsAudits_)
            obsAudits_->add(1);
        if (auditOutputs_ != truth.outputs) {
            ++auditsFailed_;
            ++windowFailures_;
            if (obsAuditFailures_)
                obsAuditFailures_->add(1);
        }
        if (windowAudits_ >= cfg_.audit_window) {
            double rate = static_cast<double>(windowFailures_) /
                          static_cast<double>(windowAudits_);
            if (rate > cfg_.audit_clear_threshold) {
                // Deactivate the immutable frozen layout and drop
                // the overlay's entries (its selections survive, so
                // online fill keeps working until the next
                // re-learn). The frozen arena itself is shared and
                // never mutated.
                frozenActive_ = false;
                overlay_.clear();
                ++tableClears_;
                if (obsTableClears_)
                    obsTableClears_->add(1);
                util::warn("snip watchdog: audited error rate %.1f%% "
                           "exceeded %.1f%%; table cleared",
                           rate * 100.0,
                           cfg_.audit_clear_threshold * 100.0);
            }
            windowAudits_ = 0;
            windowFailures_ = 0;
        }
    }
    if (cfg_.online_fill) {
        // Entries the frozen table already memoizes would be
        // deduplicated by the old single-table insert; skip them so
        // the overlay holds only genuinely new observations.
        if (!frozenActive_ || !frozen_->containsRecord(truth))
            overlay_.insert(truth);
        if (obsOnlineInserts_)
            obsOnlineInserts_->add(1);
    }
}

uint64_t
SnipScheme::deployedTableBytes() const
{
    uint64_t n = overlay_.totalBytes();
    if (frozenActive_)
        n += frozen_->totalBytes();
    return n;
}

void
SnipScheme::recordTableStats(obs::Registry &reg) const
{
    if (frozenActive_)
        frozen_->recordStats(reg);
    else
        overlay_.recordStats(reg);
    reg.gauge("table.overlay_entries")
        .set(static_cast<double>(overlay_.entryCount()));
}

std::unique_ptr<Scheme>
makeScheme(SchemeKind kind, SnipModel *model)
{
    switch (kind) {
      case SchemeKind::Baseline:
        return std::make_unique<BaselineScheme>();
      case SchemeKind::MaxCpu:
        return std::make_unique<MaxCpuScheme>();
      case SchemeKind::MaxIp:
        return std::make_unique<MaxIpScheme>();
      case SchemeKind::Snip:
      case SchemeKind::NoOverheads:
        if (!model)
            util::fatal("makeScheme(%s) requires a SnipModel",
                        schemeName(kind));
        return std::make_unique<SnipScheme>(
            *model, SnipRuntimeConfig{},
            kind == SchemeKind::Snip);
    }
    util::panic("makeScheme: bad kind");
}

}  // namespace core
}  // namespace snip
