#include "core/scheme.h"

#include "util/logging.h"

namespace snip {
namespace core {

const char *
schemeName(SchemeKind k)
{
    switch (k) {
      case SchemeKind::Baseline: return "Baseline";
      case SchemeKind::MaxCpu: return "Max CPU";
      case SchemeKind::MaxIp: return "Max IP";
      case SchemeKind::Snip: return "SNIP";
      case SchemeKind::NoOverheads: return "No Overheads";
    }
    return "?";
}

void
Scheme::decideBatch(const games::Game &game,
                    std::span<const events::EventObject> evs,
                    std::span<const games::HandlerExecution> truths,
                    std::span<Decision> out)
{
    for (size_t i = 0; i < evs.size(); ++i) {
        out[i] = decide(game, evs[i], truths[i]);
        if (!out[i].shortcircuit)
            observe(truths[i]);
    }
}

Decision
BaselineScheme::decide(const games::Game &, const events::EventObject &,
                       const games::HandlerExecution &)
{
    return {};
}

Decision
MaxCpuScheme::decide(const games::Game &, const events::EventObject &,
                     const games::HandlerExecution &truth)
{
    Decision d;
    d.charge_lookup = false;
    if (seen_.count(truth.necessary_hash))
        d.cpu_skip_fraction = truth.maxcpu_fraction;
    return d;
}

void
MaxCpuScheme::observe(const games::HandlerExecution &truth)
{
    seen_.insert(truth.necessary_hash);
}

Decision
MaxIpScheme::decide(const games::Game &, const events::EventObject &ev,
                    const games::HandlerExecution &)
{
    Decision d;
    d.charge_lookup = false;
    // IP results (rendered tiles, decoded blocks) are reusable only
    // when the triggering event object repeats exactly. The insert
    // belongs to observe(): decide() must stay read-only so a
    // pipelined caller separating the two phases cannot
    // double-insert.
    pendingHash_ = events::hashFields(ev.fields);
    hasPending_ = true;
    if (seen_.count(pendingHash_))
        d.skip_ips = true;
    return d;
}

void
MaxIpScheme::observe(const games::HandlerExecution &)
{
    if (hasPending_) {
        seen_.insert(pendingHash_);
        hasPending_ = false;
    }
}

namespace {

/** Freeze the model (idempotent) and hand back the shared arena. */
std::shared_ptr<const FrozenTable>
frozenOf(SnipModel &model)
{
    if (!model.table && !model.frozen)
        util::fatal("SnipScheme: model has no table");
    model.freeze();
    return model.frozen;
}

/** Const models must already be deployable (frozen set). */
std::shared_ptr<const FrozenTable>
frozenOf(const SnipModel &model)
{
    if (!model.frozen)
        util::fatal("SnipScheme: const model is not frozen "
                    "(call freeze() before constructing)");
    return model.frozen;
}

}  // namespace

SnipScheme::SnipScheme(SnipModel &model, SnipRuntimeConfig cfg,
                       bool charge_overheads)
    : model_(model), cfg_(cfg), chargeOverheads_(charge_overheads),
      frozen_(frozenOf(model)), overlay_(frozen_->schema())
{
    initRuntime();
}

SnipScheme::SnipScheme(const SnipModel &model, SnipRuntimeConfig cfg,
                       bool charge_overheads)
    : model_(model), cfg_(cfg), chargeOverheads_(charge_overheads),
      frozen_(frozenOf(model)), overlay_(frozen_->schema())
{
    initRuntime();
}

void
SnipScheme::initRuntime()
{
    for (int t = 0; t < events::kNumEventTypes; ++t) {
        events::EventType type = static_cast<events::EventType>(t);
        auto selected = frozen_->selectedVector(type);
        if (!selected.empty())
            overlay_.setSelected(type, std::move(selected));
    }
    hitCounts_.assign(frozen_->entryCount(), 0);
    if (cfg_.obs) {
        obsAudits_ = &cfg_.obs->counter("decide.audits");
        obsAuditFailures_ =
            &cfg_.obs->counter("decide.audit_failures");
        obsTableClears_ = &cfg_.obs->counter("decide.table_clears");
        obsOnlineInserts_ =
            &cfg_.obs->counter("decide.online_inserts");
    }
}

Decision
SnipScheme::decide(const games::Game &game, const events::EventObject &ev,
                   const games::HandlerExecution &)
{
    return decideImpl(game, ev, nullptr);
}

Decision
SnipScheme::decideImpl(const games::Game &game,
                       const events::EventObject &ev,
                       const FrozenLookup *pre)
{
    Decision d;
    d.charge_lookup = chargeOverheads_;
    auditPending_ = false;
    d.lookup_ran = true;

    // A probe prepareBatch() resolved for this event? Consume it in
    // order regardless of frozenActive_ (the cursor tracks the
    // delivery stream), use it only on the frozen path.
    const FrozenProbe *probe = nullptr;
    if (preparedCursor_ < preparedSeqs_.size() &&
        preparedSeqs_[preparedCursor_] == ev.seq)
        probe = &prepared_[preparedCursor_++];

    // Frozen-first lookup with the overlay consulted only on a miss.
    // The scan is equivalent to the old single-table scan: frozen
    // buckets hold the profile entries in their original insertion
    // order and overlay buckets the online-filled ones that would
    // have followed them, and the shared gather cost (the type's
    // selected bytes, charged by both lookups) is counted once.
    bool hit = false;
    if (frozenActive_) {
        FrozenLookup fres;
        if (pre)
            fres = *pre;
        else if (probe)
            fres = frozen_->finishLookup(ev, game, scratch_, *probe);
        else
            fres = frozen_->lookup(ev, game, scratch_);
        d.lookup_bytes = fres.bytes_scanned;
        d.lookup_candidates = fres.candidates;
        if (fres.hit) {
            hit = true;
            ++hitCounts_[fres.entry_ordinal];
            d.outputs.resize(fres.nout);
            for (uint32_t i = 0; i < fres.nout; ++i)
                d.outputs[i] = {fres.out_ids[i],
                                fres.out_values[i]};
        } else if (overlay_.entryCount(ev.type) > 0) {
            MemoLookup ores = overlay_.lookup(ev, game, scratch_);
            // The overlay's gather cost is already covered by the
            // frozen lookup's charge; count only the extra scan
            // volume, clamped at zero (an empty-bucket early-out can
            // charge less than the shared gather cost).
            uint64_t sel = overlay_.selectedBytes(ev.type);
            d.lookup_bytes += ores.bytes_scanned > sel
                                  ? ores.bytes_scanned - sel
                                  : 0;
            d.lookup_candidates += ores.candidates;
            if (ores.hit) {
                hit = true;
                d.outputs = ores.entry->outputs;
            }
        }
    } else {
        MemoLookup ores = overlay_.lookup(ev, game, scratch_);
        d.lookup_bytes = ores.bytes_scanned;
        d.lookup_candidates = ores.candidates;
        if (ores.hit) {
            hit = true;
            d.outputs = ores.entry->outputs;
        }
    }

    d.lookup_hit = hit;
    if (hit) {
        // Audit watchdog: periodically let a would-be hit run at
        // full cost so the table's output can be checked against
        // ground truth in observe().
        if (cfg_.audit_every > 0 &&
            ++hitCounter_ % cfg_.audit_every == 0) {
            auditPending_ = true;
            d.audited = true;
            auditOutputs_ = std::move(d.outputs);
            d.outputs.clear();
            return d;  // processed fully; observe() compares
        }
        d.shortcircuit = true;
    }
    return d;
}

bool
SnipScheme::resolveProbes(std::span<const events::EventObject> evs,
                          PreparedProbes &out,
                          BatchLookupScratch &scratch) const
{
    // Reads only the immutable frozen arena (deliberately not
    // frozenActive_: that flag belongs to the decide thread, and a
    // post-clear decide() ignores adopted probes anyway), so this
    // is safe to run concurrently with decide()/observe().
    out.probes.resize(evs.size());
    out.seqs.resize(evs.size());
    frozen_->probeBatch(evs, {out.probes.data(), out.probes.size()},
                        scratch);
    for (size_t i = 0; i < evs.size(); ++i)
        out.seqs[i] = evs[i].seq;
    return true;
}

void
SnipScheme::adoptProbes(PreparedProbes &&p)
{
    prepared_.swap(p.probes);
    preparedSeqs_.swap(p.seqs);
    preparedCursor_ = 0;
}

void
SnipScheme::prepareBatch(std::span<const events::EventObject> evs)
{
    // Exactly resolve + adopt, sharing the buffers back and forth
    // through preparedTmp_ so the sequential path stays
    // allocation-free across blocks.
    resolveProbes(evs, preparedTmp_, batchScratch_);
    adoptProbes(std::move(preparedTmp_));
}

void
SnipScheme::decideBatch(const games::Game &game,
                        std::span<const events::EventObject> evs,
                        std::span<const games::HandlerExecution> truths,
                        std::span<Decision> out)
{
    // The frozen half of every decide in one batched pass: the arena
    // is immutable and decideBatch never applies outputs, so the
    // static-game-state contract of lookupBatch holds for the whole
    // block. Everything order-dependent — overlay lookups/inserts,
    // audit-window counting, a possible mid-block watchdog clear —
    // then replays the exact scalar protocol in original event
    // order; after a mid-block clear the precomputed lookups are
    // simply ignored (decideImpl takes the overlay-only path).
    batchLookups_.resize(evs.size());
    if (frozenActive_)
        frozen_->lookupBatch(evs, game,
                             {batchLookups_.data(),
                              batchLookups_.size()},
                             batchScratch_);
    for (size_t i = 0; i < evs.size(); ++i) {
        const FrozenLookup *pre =
            frozenActive_ ? &batchLookups_[i] : nullptr;
        out[i] = decideImpl(game, evs[i], pre);
        if (!out[i].shortcircuit)
            observe(truths[i]);
    }
}

void
SnipScheme::observe(const games::HandlerExecution &truth)
{
    if (auditPending_) {
        auditPending_ = false;
        ++auditsRun_;
        ++windowAudits_;
        if (obsAudits_)
            obsAudits_->add(1);
        if (auditOutputs_ != truth.outputs) {
            ++auditsFailed_;
            ++windowFailures_;
            if (obsAuditFailures_)
                obsAuditFailures_->add(1);
        }
        if (windowAudits_ >= cfg_.audit_window) {
            double rate = static_cast<double>(windowFailures_) /
                          static_cast<double>(windowAudits_);
            if (rate > cfg_.audit_clear_threshold) {
                // Deactivate the immutable frozen layout and drop
                // the overlay's entries (its selections survive, so
                // online fill keeps working until the next
                // re-learn). The frozen arena itself is shared and
                // never mutated.
                frozenActive_ = false;
                overlay_.clear();
                ++tableClears_;
                if (obsTableClears_)
                    obsTableClears_->add(1);
                util::warn("snip watchdog: audited error rate %.1f%% "
                           "exceeded %.1f%%; table cleared",
                           rate * 100.0,
                           cfg_.audit_clear_threshold * 100.0);
            }
            windowAudits_ = 0;
            windowFailures_ = 0;
        }
    }
    if (cfg_.online_fill) {
        // Entries the frozen table already memoizes would be
        // deduplicated by the old single-table insert; skip them so
        // the overlay holds only genuinely new observations. The
        // counter tracks actual overlay growth — a skipped or
        // deduplicated insert is not an online insert.
        if (!frozenActive_ || !frozen_->containsRecord(truth)) {
            size_t before = overlay_.entryCount(truth.type);
            overlay_.insert(truth);
            if (obsOnlineInserts_ &&
                overlay_.entryCount(truth.type) > before)
                obsOnlineInserts_->add(1);
        }
    }
}

uint64_t
SnipScheme::deployedTableBytes() const
{
    uint64_t n = overlay_.totalBytes();
    if (frozenActive_)
        n += frozen_->totalBytes();
    return n;
}

void
SnipScheme::recordTableStats(obs::Registry &reg) const
{
    if (frozenActive_)
        frozen_->recordStats(reg);
    else
        overlay_.recordStats(reg);
    reg.gauge("table.overlay_entries")
        .set(static_cast<double>(overlay_.entryCount()));
}

std::unique_ptr<Scheme>
makeScheme(SchemeKind kind, SnipModel *model)
{
    switch (kind) {
      case SchemeKind::Baseline:
        return std::make_unique<BaselineScheme>();
      case SchemeKind::MaxCpu:
        return std::make_unique<MaxCpuScheme>();
      case SchemeKind::MaxIp:
        return std::make_unique<MaxIpScheme>();
      case SchemeKind::Snip:
      case SchemeKind::NoOverheads:
        if (!model)
            util::fatal("makeScheme(%s) requires a SnipModel",
                        schemeName(kind));
        return std::make_unique<SnipScheme>(
            *model, SnipRuntimeConfig{},
            kind == SchemeKind::Snip);
    }
    util::panic("makeScheme: bad kind");
}

}  // namespace core
}  // namespace snip
