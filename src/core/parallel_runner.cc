#include "core/parallel_runner.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>

#include "util/logging.h"
#include "util/rng.h"

namespace snip {
namespace core {

unsigned
defaultThreadCount()
{
    if (const char *env = std::getenv("SNIP_THREADS")) {
        long n = std::strtol(env, nullptr, 0);
        if (n >= 1)
            return static_cast<unsigned>(n);
        util::warn("ignoring SNIP_THREADS='%s' (need an integer >= 1)",
                   env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ParallelRunner::ParallelRunner(unsigned threads)
    : threads_(threads ? threads : defaultThreadCount())
{
}

void
ParallelRunner::forEach(size_t n,
                        const std::function<void(size_t)> &fn) const
{
    if (n == 0)
        return;
    unsigned workers =
        static_cast<unsigned>(std::min<size_t>(threads_, n));
    if (workers <= 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    // Work-stealing-free dynamic dispatch: a shared atomic cursor.
    // Which worker runs which index varies run to run, but every
    // index runs exactly once and writes only its own slot, so the
    // aggregate result is schedule-independent.
    std::atomic<size_t> next{0};
    auto body = [&] {
        for (;;) {
            size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            fn(i);
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (unsigned w = 1; w < workers; ++w)
        pool.emplace_back(body);
    body();  // the calling thread is worker 0
    for (auto &t : pool)
        t.join();
}

std::vector<SessionResult>
ParallelRunner::runSessions(const std::vector<SessionSpec> &specs) const
{
    std::vector<SessionResult> results(specs.size());
    forEach(specs.size(), [&](size_t i) {
        const SessionSpec &spec = specs[i];
        if (!spec.make_game || !spec.make_scheme)
            util::fatal("ParallelRunner: session %zu lacks a game or "
                        "scheme factory", i);
        std::unique_ptr<games::Game> game = spec.make_game();
        std::unique_ptr<Scheme> scheme = spec.make_scheme(*game);
        results[i] = runSession(*game, *scheme, spec.cfg);
    });
    return results;
}

uint64_t
ParallelRunner::sessionSeed(uint64_t base, uint64_t index)
{
    return util::mixCombine(base, util::mix64(index + 1));
}

}  // namespace core
}  // namespace snip
