#include "core/parallel_runner.h"

#include "util/logging.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace snip {
namespace core {

unsigned
defaultThreadCount()
{
    return util::defaultThreadCount();
}

ParallelRunner::ParallelRunner(unsigned threads)
    : threads_(threads ? threads : defaultThreadCount())
{
}

void
ParallelRunner::forEach(size_t n,
                        util::FunctionRef<void(size_t)> fn) const
{
    util::parallelFor(n, fn, threads_);
}

std::vector<SessionResult>
ParallelRunner::runSessions(const std::vector<SessionSpec> &specs) const
{
    // Validate every spec on the calling thread before any work is
    // dispatched: even though the pool now forwards the first worker
    // exception to the caller, a bad spec should fail before any
    // session has consumed cycles, and with throw-on-error configured
    // the throw must carry the offending index.
    for (size_t i = 0; i < specs.size(); ++i) {
        if (!specs[i].make_game || !specs[i].make_scheme)
            util::fatal("ParallelRunner: session %zu lacks a game or "
                        "scheme factory", i);
    }

    std::vector<SessionResult> results(specs.size());
    forEach(specs.size(), [&](size_t i) {
        const SessionSpec &spec = specs[i];
        std::unique_ptr<games::Game> game = spec.make_game();
        std::unique_ptr<Scheme> scheme = spec.make_scheme(*game);
        results[i] = runSession(*game, *scheme, spec.cfg);
    });
    return results;
}

uint64_t
ParallelRunner::sessionSeed(uint64_t base, uint64_t index)
{
    return util::mixCombine(base, util::mix64(index + 1));
}

}  // namespace core
}  // namespace snip
