#include "core/federated.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <map>

#include "core/model_codec.h"
#include "core/parallel_runner.h"
#include "core/simulation.h"
#include "games/registry.h"
#include "trace/recorder.h"
#include "trace/trace_log.h"
#include "util/logging.h"
#include "util/rng.h"

namespace snip {
namespace core {

namespace {

/** One user's recorded play: event trace + replayed profile. */
struct UserData {
    trace::EventTrace trace;
    trace::Profile profile;
};

std::vector<UserData>
recordUsers(const std::string &game_name, const FederatedConfig &cfg)
{
    // Every user's session+replay is independent and fully seeded,
    // so the fleet records in parallel (one game + replica clone per
    // user) with results identical to the serial loop.
    std::vector<UserData> users(cfg.num_users);
    ParallelRunner runner;
    runner.forEach(static_cast<size_t>(cfg.num_users), [&](size_t u) {
        auto game = games::makeGame(game_name);
        BaselineScheme baseline;
        SimulationConfig scfg;
        scfg.duration_s = cfg.session_s;
        scfg.record_events = true;
        scfg.seed = util::mixCombine(cfg.seed,
                                     0x05e7000ULL + static_cast<uint64_t>(u));
        SessionResult res = runSession(*game, baseline, scfg);
        auto replica = games::makeGame(game_name);
        // The session's trace is dead after this scope: adopt it
        // instead of deep-copying megabytes of events per user, then
        // replay from the adopted copy.
        users[u].trace = std::move(res.trace);
        users[u].profile =
            trace::Replayer::replay(users[u].trace, *replica);
    });
    return users;
}

uint64_t
traceBytes(const trace::EventTrace &t)
{
    util::ByteBuffer buf;
    trace::encodeEventTrace(t, buf);
    uint64_t bytes = buf.size();
    // Replaying camera-driven games offline needs the recorded
    // camera feed as well (the paper screen-records it); count a
    // compressed frame per CameraFrame event.
    constexpr uint64_t kCompressedFrameBytes = 100 * 1024;
    for (const auto &ev : t.events)
        if (ev.type == events::EventType::CameraFrame)
            bytes += kCompressedFrameBytes;
    return bytes;
}

}  // namespace

size_t
federatedVotesNeeded(double vote_fraction, int num_users)
{
    if (num_users <= 0)
        return 0;
    if (!(vote_fraction > 0.0))
        return 1;  // a kept field needs at least one voter

    // Exact ceiling of the rational number the double represents:
    // decompose vote_fraction into mant * 2^(exp-53) with mant an
    // integer (m * 2^53 is exact for every finite double), so
    //   vote_fraction * num_users = (mant * num_users) / 2^shift
    // and the ceiling is pure integer arithmetic — no epsilon fudge
    // that silently undercounts when the true product sits within
    // the fudge of an integer boundary.
    int exp = 0;
    double m = std::frexp(vote_fraction, &exp);
    auto mant = static_cast<unsigned __int128>(std::ldexp(m, 53));
    int shift = 53 - exp;
    if (shift <= 0)  // fraction >= 2^53: unsatisfiable by any fleet
        return std::numeric_limits<size_t>::max();
    unsigned __int128 num =
        mant * static_cast<unsigned __int128>(num_users);
    if (shift >= 127)  // denominator dwarfs any product: ceil to 1
        return 1;
    unsigned __int128 ceilv =
        (num + ((static_cast<unsigned __int128>(1) << shift) - 1)) >>
        shift;
    return ceilv > std::numeric_limits<size_t>::max()
               ? std::numeric_limits<size_t>::max()
               : static_cast<size_t>(ceilv);
}

FederatedResult
buildCentralized(const std::string &game_name,
                 const FederatedConfig &cfg)
{
    auto game = games::makeGame(game_name);
    auto users = recordUsers(game_name, cfg);

    FederatedResult out;
    trace::Profile merged;
    merged.game = game_name;
    for (const auto &u : users) {
        merged.append(u.profile);
        out.cost.uploaded_bytes += traceBytes(u.trace);
    }
    out.cost.selection_records = merged.records.size();

    SnipConfig scfg = cfg.snip;
    scfg.overrides.force_keep = game->params().recommended_overrides;
    out.model = buildSnipModel(merged, *game, scfg);
    for (const auto &t : out.model.types)
        out.deployed_types.emplace_back(
            t.type, t.selection.selected.size());
    out.model.freeze();  // deployable form for the runtime
    return out;
}

FederatedResult
buildFederated(const std::string &game_name,
               const FederatedConfig &cfg)
{
    auto game = games::makeGame(game_name);
    auto users = recordUsers(game_name, cfg);

    // Per-user local selection (runs on-device / per-silo; the
    // backend's serial compute is a single user's job).
    std::vector<SnipModel> locals;
    uint64_t max_user_records = 0;
    for (int u = 0; u < cfg.num_users; ++u) {
        SnipConfig scfg = cfg.snip;
        scfg.seed = util::mixCombine(cfg.snip.seed,
                                     static_cast<uint64_t>(u));
        scfg.overrides.force_keep =
            game->params().recommended_overrides;
        locals.push_back(
            buildSnipModel(users[u].profile, *game, scfg));
        max_user_records = std::max<uint64_t>(
            max_user_records, users[u].profile.records.size());
    }

    // Majority vote per type over the selected field sets.
    FederatedResult out;
    out.cost.selection_records = max_user_records;
    size_t votes_needed =
        federatedVotesNeeded(cfg.vote_fraction, cfg.num_users);

    out.model.game = game_name;
    out.model.table = std::make_unique<MemoTable>(game->schema());
    std::map<events::EventType, std::map<events::FieldId, size_t>>
        votes;
    for (const auto &local : locals)
        for (const auto &t : local.types)
            for (events::FieldId fid : t.selection.selected)
                ++votes[t.type][fid];

    // Evidence weight of each deployed type: profiled records of
    // that type across the fleet (drives the confidence gate).
    std::array<uint64_t, events::kNumEventTypes> type_records{};
    for (const auto &u : users)
        for (const auto &rec : u.profile.records)
            ++type_records[static_cast<int>(rec.type)];

    for (const auto &tv : votes) {
        std::vector<events::FieldId> selected;
        for (const auto &fv : tv.second)
            if (fv.second >= votes_needed)
                selected.push_back(fv.first);
        if (selected.empty())
            continue;
        out.model.table->setSelected(tv.first, selected);
        TypeModel tm;
        tm.type = tv.first;
        tm.records = type_records[static_cast<int>(tv.first)];
        tm.selection.selected = selected;
        for (events::FieldId fid : selected)
            tm.selection.selected_bytes +=
                game->schema().def(fid).size_bytes;
        out.model.types.push_back(std::move(tm));
        out.deployed_types.emplace_back(tv.first, selected.size());
    }

    // Each device projects its local profile onto the agreed fields
    // and uploads its table entries as a packed OTA-style payload;
    // the server decodes each payload and unions it into the fleet
    // model. A payload that fails integrity checks is dropped, not
    // fatal — that user just contributes nothing this round.
    for (int u = 0; u < cfg.num_users; ++u) {
        SnipModel device;
        device.game = game_name;
        device.table = std::make_unique<MemoTable>(game->schema());
        for (const auto &t : out.model.types)
            device.table->setSelected(t.type, t.selection.selected);
        for (const auto &rec : users[u].profile.records)
            device.table->insert(rec);

        util::ByteBuffer payload;
        packModel(device, payload);
        out.cost.uploaded_bytes += payload.size();

        util::Result<SnipModel> decoded = unpackModel(payload);
        if (!decoded.ok() || !decoded.value().table) {
            util::warn("federated: dropping user %d upload: %s", u,
                       decoded.status().message().c_str());
            continue;
        }
        out.model.table->mergeFrom(*decoded.value().table);
    }
    // The merge operates on the mutable table; freeze the aggregate
    // into its deployable form once all uploads are unioned.
    out.model.freeze();
    return out;
}

FederatedEval
evaluateModel(const std::string &game_name, const SnipModel &model,
              uint64_t seed, double session_s)
{
    auto game = games::makeGame(game_name);
    SimulationConfig cfg;
    cfg.duration_s = session_s;
    cfg.seed = seed;

    BaselineScheme baseline;
    double e_base = runSession(*game, baseline, cfg).report.total();

    SnipScheme scheme(model);
    SessionResult res = runSession(*game, scheme, cfg);

    FederatedEval ev;
    ev.coverage = res.stats.coverageInstr();
    ev.error_field_rate = res.stats.errorFieldRate();
    ev.energy_savings = 1.0 - res.report.total() / e_base;
    return ev;
}

}  // namespace core
}  // namespace snip
