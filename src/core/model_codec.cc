#include "core/model_codec.h"

#include <bit>
#include <set>

#include "trace/trace_log.h"
#include "util/crc32.h"

namespace snip {
namespace core {

namespace {

/** Minimum encoded sizes, used to sanity-bound decoded counts. */
constexpr uint64_t kMinFieldDefBytes = 10;  // len + side + cat + size
constexpr uint64_t kMinTypeModelBytes = 49; // fixed TypeModel scalars
constexpr uint64_t kMinFieldIdBytes = 4;
constexpr uint64_t kMinTableTypeBytes = 9;  // type + nsel + nentries
constexpr uint64_t kMinEntryBytes = 8;      // nkey + nout
constexpr uint64_t kMinKeyValueBytes = 12;  // id u32 + value u64

void
encodeSchema(const events::FieldSchema &schema, util::ByteBuffer &buf)
{
    buf.putU32(static_cast<uint32_t>(schema.size()));
    for (const auto &d : schema.defs()) {
        buf.putString(d.name);
        buf.putU8(static_cast<uint8_t>(d.side));
        buf.putU8(d.side == events::FieldSide::Input
                      ? static_cast<uint8_t>(d.in_cat)
                      : static_cast<uint8_t>(d.out_cat));
        buf.putU32(d.size_bytes);
    }
}

util::Status
decodeSchema(util::ByteReader &r, events::FieldSchema *schema)
{
    uint32_t n = r.u32();
    if (!r.fits(n, kMinFieldDefBytes))
        return util::Status::Error("model: truncated schema");
    std::set<std::string> names;
    for (uint32_t i = 0; i < n; ++i) {
        std::string name = r.str();
        uint8_t side = r.u8();
        uint8_t cat = r.u8();
        uint32_t size_bytes = r.u32();
        if (!r.ok())
            return util::Status::Error("model: truncated schema");
        if (name.empty() || !names.insert(name).second)
            return util::Status::Errorf(
                "model: bad schema field name at index %u", i);
        if (side > 1 || cat > 2 || size_bytes == 0)
            return util::Status::Errorf(
                "model: bad schema field '%s'", name.c_str());
        if (side == static_cast<uint8_t>(events::FieldSide::Input))
            schema->addInput(
                name, static_cast<events::InputCategory>(cat),
                size_bytes);
        else
            schema->addOutput(
                name, static_cast<events::OutputCategory>(cat),
                size_bytes);
    }
    return util::Status::Ok();
}

/** Validate a decoded field-id list: in-schema, on the right side,
 *  strictly ascending (the canonical order every encoder emits). */
util::Status
checkFieldIds(const std::vector<events::FieldId> &ids,
              const events::FieldSchema &schema,
              events::FieldSide side, const char *what)
{
    events::FieldId prev = events::kInvalidField;
    for (events::FieldId id : ids) {
        if (id >= schema.size())
            return util::Status::Errorf("model: %s id %u out of "
                                        "schema range", what, id);
        if (schema.def(id).side != side)
            return util::Status::Errorf("model: %s id %u on wrong "
                                        "side", what, id);
        if (prev != events::kInvalidField && id <= prev)
            return util::Status::Errorf("model: %s ids not strictly "
                                        "ascending", what);
        prev = id;
    }
    return util::Status::Ok();
}

util::Status
decodeFieldIds(util::ByteReader &r,
               std::vector<events::FieldId> *ids, const char *what)
{
    uint32_t n = r.u32();
    if (!r.fits(n, kMinFieldIdBytes))
        return util::Status::Errorf("model: truncated %s list", what);
    ids->clear();
    ids->reserve(n);
    for (uint32_t i = 0; i < n; ++i)
        ids->push_back(r.u32());
    return util::Status::Ok();
}

util::Status
decodeFieldValues(util::ByteReader &r,
                  std::vector<events::FieldValue> *values,
                  const events::FieldSchema &schema,
                  events::FieldSide side, const char *what)
{
    uint32_t n = r.u32();
    if (!r.fits(n, kMinKeyValueBytes))
        return util::Status::Errorf("model: truncated %s list", what);
    values->clear();
    values->reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
        events::FieldValue fv;
        fv.id = r.u32();
        fv.value = r.u64();
        if (r.ok() && (fv.id >= schema.size() ||
                       schema.def(fv.id).side != side))
            return util::Status::Errorf("model: bad %s field id %u",
                                        what, fv.id);
        values->push_back(fv);
    }
    if (!r.ok())
        return util::Status::Errorf("model: truncated %s list", what);
    return util::Status::Ok();
}

/** Package offset where the payload starts (after the header). */
constexpr size_t kPayloadPackageOffset = 12;

void
encodePayload(const SnipModel &model, util::ByteBuffer &buf)
{
    buf.putString(model.game);

    const events::FieldSchema empty;
    const events::FieldSchema &schema =
        model.table    ? model.table->schema()
        : model.frozen ? model.frozen->schema()
                       : empty;
    encodeSchema(schema, buf);

    buf.putU32(static_cast<uint32_t>(model.types.size()));
    for (const auto &t : model.types) {
        buf.putU8(static_cast<uint8_t>(t.type));
        buf.putU64(t.records);
        buf.putU32(static_cast<uint32_t>(t.selection.selected.size()));
        for (events::FieldId fid : t.selection.selected)
            buf.putU32(fid);
        buf.putU64(t.selection.selected_bytes);
        buf.putU64(std::bit_cast<uint64_t>(t.selection.full_error));
        buf.putU64(t.selection.full_bytes);
        buf.putU64(
            std::bit_cast<uint64_t>(t.selection.selected_error));
        buf.putU64(
            std::bit_cast<uint64_t>(t.selection.selected_hit_rate));
    }

    bool has_table = model.table != nullptr || model.frozen != nullptr;
    buf.putU8(has_table ? 1 : 0);
    if (!has_table)
        return;

    // The v2 "SNPF" section: the frozen arena verbatim, preceded by
    // a u32 pad length + zero pad bytes chosen so the arena starts
    // 8-aligned *within the package* (payload begins at package
    // offset 12). The pad is a pure function of the cursor, so
    // re-serialization stays byte-identical.
    std::shared_ptr<const FrozenTable> frozen =
        model.frozen ? model.frozen : model.table->freeze();
    size_t arena_pkg_off =
        kPayloadPackageOffset + buf.size() + 4;  // after pad length
    uint32_t pad =
        static_cast<uint32_t>((8 - arena_pkg_off % 8) % 8);
    buf.putU32(pad);
    for (uint32_t i = 0; i < pad; ++i)
        buf.putU8(0);
    buf.putBytes(frozen->arenaData(), frozen->arenaSize());
}

/**
 * Decode the shared payload head: game name, schema snapshot,
 * per-type selection metadata and the has-table flag (identical in
 * v1 and v2).
 */
util::Status
decodeMeta(util::ByteReader &r, SnipModel *model,
           events::FieldSchema *schema, bool *has_table)
{
    model->game = r.str();

    util::Status st = decodeSchema(r, schema);
    if (!st.ok())
        return st;

    uint32_t ntypes = r.u32();
    if (!r.fits(ntypes, kMinTypeModelBytes))
        return util::Status::Error("model: truncated type list");
    std::set<uint8_t> seen_types;
    for (uint32_t i = 0; i < ntypes; ++i) {
        TypeModel tm;
        uint8_t type = r.u8();
        if (r.ok() && (type >= events::kNumEventTypes ||
                       !seen_types.insert(type).second))
            return util::Status::Errorf(
                "model: bad or duplicate event type %u", type);
        tm.type = static_cast<events::EventType>(type);
        tm.records = r.u64();
        st = decodeFieldIds(r, &tm.selection.selected, "selection");
        if (!st.ok())
            return st;
        tm.selection.selected_bytes = r.u64();
        tm.selection.full_error = std::bit_cast<double>(r.u64());
        tm.selection.full_bytes = r.u64();
        tm.selection.selected_error = std::bit_cast<double>(r.u64());
        tm.selection.selected_hit_rate =
            std::bit_cast<double>(r.u64());
        if (!r.ok())
            return util::Status::Error("model: truncated type entry");
        st = checkFieldIds(tm.selection.selected, *schema,
                           events::FieldSide::Input, "selection");
        if (!st.ok())
            return st;
        model->types.push_back(std::move(tm));
    }

    uint8_t flag = r.u8();
    if (!r.ok())
        return util::Status::Error("model: truncated table flag");
    if (flag > 1)
        return util::Status::Errorf("model: bad table flag %u", flag);
    *has_table = flag != 0;
    return util::Status::Ok();
}

/** Decode the v1 per-entry table wire format (legacy packages). */
util::Status
decodeTableV1(util::ByteReader &r, SnipModel *model,
              const events::FieldSchema &schema)
{
    util::Status st;
    model->table = std::make_unique<MemoTable>(schema);
    uint32_t ntable = r.u32();
    if (!r.fits(ntable, kMinTableTypeBytes))
        return util::Status::Error("model: truncated table");
    std::set<uint8_t> seen_types;
    for (uint32_t i = 0; i < ntable; ++i) {
        uint8_t type = r.u8();
        if (r.ok() && (type >= events::kNumEventTypes ||
                       !seen_types.insert(type).second))
            return util::Status::Errorf(
                "model: bad or duplicate table type %u", type);
        events::EventType t = static_cast<events::EventType>(type);
        std::vector<events::FieldId> selected;
        st = decodeFieldIds(r, &selected, "table selection");
        if (!st.ok())
            return st;
        st = checkFieldIds(selected, schema,
                           events::FieldSide::Input,
                           "table selection");
        if (!st.ok())
            return st;
        if (selected.empty())
            return util::Status::Error(
                "model: table type with empty selection");
        model->table->setSelected(t, selected);

        uint32_t nentries = r.u32();
        if (!r.fits(nentries, kMinEntryBytes))
            return util::Status::Error(
                "model: truncated entry list");
        for (uint32_t e = 0; e < nentries; ++e) {
            games::HandlerExecution rec;
            rec.type = t;
            st = decodeFieldValues(r, &rec.inputs, schema,
                                   events::FieldSide::Input,
                                   "entry key");
            if (!st.ok())
                return st;
            st = decodeFieldValues(r, &rec.outputs, schema,
                                   events::FieldSide::Output,
                                   "entry output");
            if (!st.ok())
                return st;
            model->table->insert(rec);
        }
    }
    if (!r.ok())
        return util::Status::Error("model: truncated payload");
    return util::Status::Ok();
}

/**
 * Decode the v2 "SNPF" section: pad length + zero pad + the frozen
 * arena, which must fill the payload exactly. The returned view
 * borrows the package bytes; @p owner (may be null for a transient
 * server-side read) keeps them alive.
 */
util::Status
decodeArenaV2(util::ByteBuffer &buf, util::ByteReader &r,
              size_t payload_end, const events::FieldSchema &schema,
              std::shared_ptr<const void> owner,
              std::shared_ptr<const FrozenTable> *out)
{
    uint32_t pad = r.u32();
    if (!r.ok())
        return util::Status::Error("model: truncated arena pad");
    if (pad >= 8)
        return util::Status::Errorf("model: bad arena pad %u", pad);
    for (uint32_t i = 0; i < pad; ++i) {
        uint8_t b = r.u8();
        if (!r.ok())
            return util::Status::Error("model: truncated arena pad");
        if (b != 0)
            return util::Status::Error(
                "model: nonzero arena pad byte");
    }
    if (buf.cursor() % 8 != 0)
        return util::Status::Error("model: arena not 8-aligned");
    if (buf.cursor() > payload_end)
        return util::Status::Error("model: truncated arena");
    size_t len = payload_end - buf.cursor();
    auto view = FrozenTable::attach(
        buf.data().data() + buf.cursor(), len, std::move(owner),
        schema);
    if (!view.ok())
        return view.status();
    r.skip(len);
    *out = std::move(view.value());
    return util::Status::Ok();
}

/**
 * Rebuild a mutable MemoTable from a validated arena view: same
 * selections, entries re-inserted in canonical order (visitRecords
 * yields them so), so freeze() of the rebuild reproduces the arena
 * byte for byte.
 */
void
rebuildTable(const FrozenTable &view,
             const events::FieldSchema &schema, SnipModel *model)
{
    model->table = std::make_unique<MemoTable>(schema);
    for (int t = 0; t < events::kNumEventTypes; ++t) {
        events::EventType type = static_cast<events::EventType>(t);
        auto selected = view.selectedVector(type);
        if (!selected.empty())
            model->table->setSelected(type, std::move(selected));
    }
    view.visitRecords([&](const games::HandlerExecution &rec) {
        model->table->insert(rec);
    });
}

}  // namespace

void
packModel(const SnipModel &model, util::ByteBuffer &out)
{
    util::ByteBuffer payload;
    encodePayload(model, payload);
    out.putU32(kModelMagic);
    out.putU32(kModelVersion);
    out.putU32(static_cast<uint32_t>(payload.size()));
    out.putBytes(payload.data().data(), payload.size());
    out.putU32(util::crc32(payload.data().data(), payload.size()));
}

util::Status
inspectPackage(util::ByteBuffer &buf, PackageInfo *info)
{
    buf.rewind();
    util::ByteReader r(buf);
    uint32_t magic = r.u32();
    info->version = r.u32();
    info->payload_bytes = r.u32();
    if (!r.ok())
        return util::Status::Error("model: truncated header");
    if (magic != kModelMagic)
        return util::Status::Errorf("model: bad magic 0x%08x", magic);
    if (buf.remaining() != info->payload_bytes + 4ull)
        return util::Status::Errorf(
            "model: payload length %u does not match package size",
            info->payload_bytes);
    const uint8_t *payload = buf.data().data() + buf.cursor();
    uint32_t computed = util::crc32(payload, info->payload_bytes);
    const uint8_t *footer = payload + info->payload_bytes;
    info->crc = static_cast<uint32_t>(footer[0]) |
                static_cast<uint32_t>(footer[1]) << 8 |
                static_cast<uint32_t>(footer[2]) << 16 |
                static_cast<uint32_t>(footer[3]) << 24;
    info->crc_ok = computed == info->crc;
    return util::Status::Ok();
}

util::Result<SnipModel>
unpackModel(util::ByteBuffer &buf)
{
    PackageInfo info;
    util::Status st = inspectPackage(buf, &info);
    if (!st.ok())
        return st;
    if (info.version != kModelVersion &&
        info.version != kLegacyModelVersion)
        return util::Status::Errorf(
            "model: unsupported version %u (expected %u)",
            info.version, kModelVersion);
    if (!info.crc_ok)
        return util::Status::Errorf(
            "model: CRC mismatch (stored 0x%08x): corrupt payload",
            info.crc);

    // inspectPackage left the cursor at the payload start.
    size_t payload_end = buf.cursor() + info.payload_bytes;
    util::ByteReader r(buf);
    SnipModel model;
    events::FieldSchema schema;
    bool has_table = false;
    st = decodeMeta(r, &model, &schema, &has_table);
    if (!st.ok())
        return st;
    if (has_table) {
        if (info.version == kLegacyModelVersion) {
            st = decodeTableV1(r, &model, schema);
        } else {
            // Server-side read of a v2 arena: validate a transient
            // borrowed view, then rebuild the mutable table from it.
            std::shared_ptr<const FrozenTable> view;
            st = decodeArenaV2(buf, r, payload_end, schema, nullptr,
                               &view);
            if (st.ok())
                rebuildTable(*view, schema, &model);
        }
        if (!st.ok())
            return st;
    }
    if (buf.cursor() != payload_end)
        return util::Status::Error(
            "model: trailing bytes in payload");
    return model;
}

util::Result<SnipModel>
deployModel(std::shared_ptr<util::ByteBuffer> pkg)
{
    if (!pkg)
        return util::Status::Error("model: null package");
    PackageInfo info;
    util::Status st = inspectPackage(*pkg, &info);
    if (!st.ok())
        return st;
    if (info.version == kLegacyModelVersion) {
        // v1: per-entry rebuild, then freeze for the runtime.
        util::Result<SnipModel> res = unpackModel(*pkg);
        if (!res.ok())
            return res.status();
        SnipModel model = std::move(res.value());
        if (model.table)
            model.freeze();
        return model;
    }
    if (info.version != kModelVersion)
        return util::Status::Errorf(
            "model: unsupported version %u (expected %u)",
            info.version, kModelVersion);
    if (!info.crc_ok)
        return util::Status::Errorf(
            "model: CRC mismatch (stored 0x%08x): corrupt payload",
            info.crc);

    size_t payload_end = pkg->cursor() + info.payload_bytes;
    util::ByteReader r(*pkg);
    SnipModel model;
    events::FieldSchema schema;
    bool has_table = false;
    st = decodeMeta(r, &model, &schema, &has_table);
    if (!st.ok())
        return st;
    if (has_table) {
        // Zero-copy deploy: the FrozenTable is a validated view over
        // the package bytes, kept alive by sharing ownership of the
        // buffer itself. No per-entry work, no table rebuild.
        st = decodeArenaV2(*pkg, r, payload_end, schema, pkg,
                           &model.frozen);
        if (!st.ok())
            return st;
    }
    if (pkg->cursor() != payload_end)
        return util::Status::Error(
            "model: trailing bytes in payload");
    return model;
}

util::Status
saveModel(const SnipModel &model, const std::string &path)
{
    util::ByteBuffer buf;
    packModel(model, buf);
    return trace::saveBuffer(buf, path);
}

util::Result<SnipModel>
loadModel(const std::string &path)
{
    util::ByteBuffer buf;
    util::Status st = trace::loadBuffer(path, &buf);
    if (!st.ok())
        return st;
    return unpackModel(buf);
}

uint64_t
packedModelBytes(const SnipModel &model)
{
    util::ByteBuffer buf;
    packModel(model, buf);
    return buf.size();
}

}  // namespace core
}  // namespace snip
