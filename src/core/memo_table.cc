#include "core/memo_table.h"

#include <algorithm>

#include "util/logging.h"
#include "util/rng.h"

namespace snip {
namespace core {

MemoTable::MemoTable(const events::FieldSchema &schema)
    : schema_(&schema)
{
}

void
MemoTable::setSelected(events::EventType type,
                       std::vector<events::FieldId> selected)
{
    TypeTable &tt = types_[static_cast<int>(type)];
    if (tt.entries)
        util::fatal("MemoTable::setSelected(%s) after inserts; clear() "
                    "first", events::eventTypeName(type));
    std::sort(selected.begin(), selected.end());
    tt.selected = std::move(selected);
    tt.selected_event.clear();
    tt.selected_bytes = 0;
    for (events::FieldId fid : tt.selected) {
        const auto &d = schema_->def(fid);
        tt.selected_bytes += d.size_bytes;
        if (d.side == events::FieldSide::Input &&
            d.in_cat == events::InputCategory::Event)
            tt.selected_event.push_back(fid);
    }
}

const std::vector<events::FieldId> &
MemoTable::selected(events::EventType type) const
{
    return types_[static_cast<int>(type)].selected;
}

uint64_t
MemoTable::selectedBytes(events::EventType type) const
{
    return types_[static_cast<int>(type)].selected_bytes;
}

uint64_t
MemoTable::eventSubkey(
    const TypeTable &tt,
    const std::vector<events::FieldValue> &fields) const
{
    uint64_t h = 0xe4e27000ULL;
    for (events::FieldId fid : tt.selected_event) {
        const events::FieldValue *fv = events::findField(fields, fid);
        uint64_t v = fv ? fv->value : ~0ULL;
        h = util::mixCombine(h, util::mixCombine(fid, v));
    }
    return h;
}

void
MemoTable::insert(const games::HandlerExecution &rec)
{
    TypeTable &tt = types_[static_cast<int>(rec.type)];
    if (tt.selected.empty())
        return;  // type not deployed

    // Project inputs onto the selected set (both sorted by id).
    std::vector<events::FieldValue> key;
    size_t si = 0;
    for (const auto &fv : rec.inputs) {
        while (si < tt.selected.size() && tt.selected[si] < fv.id)
            ++si;
        if (si < tt.selected.size() && tt.selected[si] == fv.id)
            key.push_back(fv);
    }

    uint64_t subkey = eventSubkey(tt, rec.inputs);
    auto &bucket = tt.buckets[subkey];
    for (const auto &e : bucket) {
        if (e.key_fields == key)
            return;  // already memoized (append-only semantics)
    }
    MemoEntry entry;
    entry.key_fields = std::move(key);
    entry.outputs = rec.outputs;
    uint64_t bytes = 0;
    for (const auto &fv : entry.key_fields)
        bytes += schema_->def(fv.id).size_bytes;
    for (const auto &fv : entry.outputs)
        bytes += schema_->def(fv.id).size_bytes;
    entry.entry_bytes = static_cast<uint32_t>(bytes);
    tt.bytes += bytes + kEntryHeaderBytes;
    ++tt.entries;
    bucket.push_back(std::move(entry));
}

MemoLookup
MemoTable::lookup(const events::EventObject &ev,
                  const games::Game &game) const
{
    const TypeTable &tt = types_[static_cast<int>(ev.type)];
    MemoLookup res;
    if (tt.selected.empty())
        return res;

    // Gathering the necessary inputs costs their size even when the
    // table has no candidates (they must be loaded to compare).
    res.bytes_scanned = tt.selected_bytes;

    auto it = tt.buckets.find(eventSubkey(tt, ev.fields));
    if (it == tt.buckets.end())
        return res;

    // Gather current values of the selected fields once.
    std::vector<events::FieldValue> gathered;
    gathered.reserve(tt.selected.size());
    for (events::FieldId fid : tt.selected) {
        const auto &d = schema_->def(fid);
        if (d.in_cat == events::InputCategory::Event) {
            const events::FieldValue *fv =
                events::findField(ev.fields, fid);
            if (fv)
                gathered.push_back(*fv);
        } else {
            uint64_t v;
            if (game.gatherInputValue(fid, v))
                gathered.push_back({fid, v});
        }
    }

    for (const MemoEntry &e : it->second) {
        ++res.candidates;
        res.bytes_scanned += e.entry_bytes + kEntryHeaderBytes;
        bool match = true;
        for (const auto &kf : e.key_fields) {
            const events::FieldValue *gv =
                events::findField(gathered, kf.id);
            if (!gv || gv->value != kf.value) {
                match = false;
                break;
            }
        }
        if (match) {
            res.hit = true;
            res.entry = &e;
            const_cast<MemoEntry &>(e).hits++;
            return res;
        }
    }
    return res;
}

size_t
MemoTable::entryCount() const
{
    size_t n = 0;
    for (const auto &tt : types_)
        n += tt.entries;
    return n;
}

size_t
MemoTable::entryCount(events::EventType type) const
{
    return types_[static_cast<int>(type)].entries;
}

uint64_t
MemoTable::totalBytes() const
{
    uint64_t n = 0;
    for (const auto &tt : types_)
        n += tt.bytes;
    return n;
}

void
MemoTable::clear()
{
    for (auto &tt : types_) {
        tt.buckets.clear();
        tt.entries = 0;
        tt.bytes = 0;
    }
}

}  // namespace core
}  // namespace snip
