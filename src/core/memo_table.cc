#include "core/memo_table.h"

#include <algorithm>

#include "core/frozen_table.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/rng.h"

namespace snip {
namespace core {

MemoTable::MemoTable(const events::FieldSchema &schema)
    : schema_(schema)
{
}

void
MemoTable::setSelected(events::EventType type,
                       std::vector<events::FieldId> selected)
{
    TypeTable &tt = types_[static_cast<int>(type)];
    if (tt.entries)
        util::fatal("MemoTable::setSelected(%s) after inserts; clear() "
                    "first", events::eventTypeName(type));
    std::sort(selected.begin(), selected.end());
    tt.selected = std::move(selected);
    tt.selected_event.clear();
    tt.selected_is_event.clear();
    tt.selected_bytes = 0;
    for (events::FieldId fid : tt.selected) {
        const auto &d = schema_.def(fid);
        tt.selected_bytes += d.size_bytes;
        bool is_event = d.side == events::FieldSide::Input &&
                        d.in_cat == events::InputCategory::Event;
        tt.selected_is_event.push_back(is_event);
        if (is_event)
            tt.selected_event.push_back(fid);
    }
}

const std::vector<events::FieldId> &
MemoTable::selected(events::EventType type) const
{
    return types_[static_cast<int>(type)].selected;
}

uint64_t
MemoTable::selectedBytes(events::EventType type) const
{
    return types_[static_cast<int>(type)].selected_bytes;
}

uint64_t
MemoTable::eventSubkey(
    const TypeTable &tt,
    const std::vector<events::FieldValue> &fields) const
{
    uint64_t h = 0xe4e27000ULL;
    for (events::FieldId fid : tt.selected_event) {
        const events::FieldValue *fv = events::findField(fields, fid);
        // Mix an explicit presence bit instead of a sentinel value:
        // a missing field must never hash like any real value
        // (UINT64_MAX is legitimate field content).
        uint64_t present = fv ? 1 : 0;
        uint64_t v = fv ? fv->value : 0;
        h = util::mixCombine(
            h, util::mixCombine(fid, util::mixCombine(present, v)));
    }
    return h;
}

void
MemoTable::insert(const games::HandlerExecution &rec)
{
    TypeTable &tt = types_[static_cast<int>(rec.type)];
    if (tt.selected.empty())
        return;  // type not deployed

    // The two-pointer projection below requires inputs sorted by id;
    // records from non-canonical producers get a sorted local copy
    // (an unsorted record must not silently drop key fields).
    const std::vector<events::FieldValue> *inputs = &rec.inputs;
    std::vector<events::FieldValue> sorted_inputs;
    if (!std::is_sorted(rec.inputs.begin(), rec.inputs.end(),
                        [](const events::FieldValue &a,
                           const events::FieldValue &b) {
                            return a.id < b.id;
                        })) {
        sorted_inputs = rec.inputs;
        events::canonicalize(sorted_inputs);
        inputs = &sorted_inputs;
    }

    // Project inputs onto the selected set (both sorted by id),
    // keeping each key field's slot within the selected layout.
    std::vector<events::FieldValue> key;
    std::vector<uint32_t> slots;
    size_t si = 0;
    for (const auto &fv : *inputs) {
        while (si < tt.selected.size() && tt.selected[si] < fv.id)
            ++si;
        if (si < tt.selected.size() && tt.selected[si] == fv.id) {
            key.push_back(fv);
            slots.push_back(static_cast<uint32_t>(si));
        }
    }

    uint64_t subkey = eventSubkey(tt, *inputs);
    auto &bucket = tt.buckets[subkey];
    for (const auto &e : bucket) {
        if (e.key_fields == key)
            return;  // already memoized (append-only semantics)
    }
    MemoEntry entry;
    entry.key_fields = std::move(key);
    entry.key_slots = std::move(slots);
    entry.outputs = rec.outputs;
    uint64_t bytes = 0;
    for (const auto &fv : entry.key_fields)
        bytes += schema_.def(fv.id).size_bytes;
    for (const auto &fv : entry.outputs)
        bytes += schema_.def(fv.id).size_bytes;
    entry.entry_bytes = static_cast<uint32_t>(bytes);
    tt.bytes += bytes + kEntryHeaderBytes;
    ++tt.entries;
    bucket.push_back(std::move(entry));
}

MemoLookup
MemoTable::lookup(const events::EventObject &ev,
                  const games::Game &game,
                  LookupScratch &scratch) const
{
    const TypeTable &tt = types_[static_cast<int>(ev.type)];
    MemoLookup res;
    if (tt.selected.empty())
        return res;

    // Gathering the necessary inputs costs their size even when the
    // table has no candidates (they must be loaded to compare).
    res.bytes_scanned = tt.selected_bytes;

    uint64_t subkey = eventSubkey(tt, ev.fields);
    auto it = tt.buckets.find(subkey);
    if (it == tt.buckets.end())
        return res;

    // Gather current values of the selected fields once, into the
    // caller's reusable slot layout (resize only grows capacity the
    // first time a type this wide is looked up).
    size_t n = tt.selected.size();
    scratch.values.resize(n);
    scratch.present.resize(n);
    for (size_t i = 0; i < n; ++i) {
        events::FieldId fid = tt.selected[i];
        if (tt.selected_is_event[i]) {
            const events::FieldValue *fv =
                events::findField(ev.fields, fid);
            scratch.present[i] = fv != nullptr;
            scratch.values[i] = fv ? fv->value : 0;
        } else {
            uint64_t v = 0;
            scratch.present[i] = game.gatherInputValue(fid, v);
            scratch.values[i] = v;
        }
    }

    for (const MemoEntry &e : it->second) {
        ++res.candidates;
        res.bytes_scanned += e.entry_bytes + kEntryHeaderBytes;
        bool match = true;
        size_t nk = e.key_fields.size();
        for (size_t j = 0; j < nk; ++j) {
            uint32_t slot = e.key_slots[j];
            if (!scratch.present[slot] ||
                scratch.values[slot] != e.key_fields[j].value) {
                match = false;
                break;
            }
        }
        if (match) {
            res.hit = true;
            res.entry = &e;
            return res;
        }
    }
    return res;
}

MemoLookup
MemoTable::lookup(const events::EventObject &ev,
                  const games::Game &game) const
{
    thread_local LookupScratch scratch;
    return lookup(ev, game, scratch);
}

std::shared_ptr<const FrozenTable>
MemoTable::freeze() const
{
    return FrozenTable::freeze(*this);
}

void
MemoTable::visitEntries(
    events::EventType type,
    const std::function<void(uint64_t, const MemoEntry &)> &fn) const
{
    const TypeTable &tt = types_[static_cast<int>(type)];
    std::vector<uint64_t> subkeys;
    subkeys.reserve(tt.buckets.size());
    for (const auto &kv : tt.buckets)
        subkeys.push_back(kv.first);
    std::sort(subkeys.begin(), subkeys.end());
    for (uint64_t sk : subkeys)
        for (const MemoEntry &e : tt.buckets.at(sk))
            fn(sk, e);
}

void
MemoTable::mergeFrom(const MemoTable &other)
{
    for (int t = 0; t < events::kNumEventTypes; ++t) {
        events::EventType type = static_cast<events::EventType>(t);
        other.visitEntries(
            type, [&](uint64_t, const MemoEntry &e) {
                games::HandlerExecution rec;
                rec.type = type;
                rec.inputs = e.key_fields;  // already canonical order
                rec.outputs = e.outputs;
                insert(rec);
            });
    }
}

size_t
MemoTable::entryCount() const
{
    size_t n = 0;
    for (const auto &tt : types_)
        n += tt.entries;
    return n;
}

size_t
MemoTable::entryCount(events::EventType type) const
{
    return types_[static_cast<int>(type)].entries;
}

uint64_t
MemoTable::totalBytes() const
{
    uint64_t n = 0;
    for (const auto &tt : types_)
        n += tt.bytes;
    return n;
}

void
MemoTable::recordStats(obs::Registry &reg) const
{
    uint64_t selected_bytes = 0;
    uint64_t configured = 0;
    for (const auto &tt : types_) {
        if (tt.selected.empty())
            continue;
        ++configured;
        selected_bytes += tt.selected_bytes;
    }
    reg.gauge("table.entries")
        .set(static_cast<double>(entryCount()));
    reg.gauge("table.bytes").set(static_cast<double>(totalBytes()));
    reg.gauge("table.selected_bytes")
        .set(static_cast<double>(selected_bytes));
    reg.gauge("table.types_configured")
        .set(static_cast<double>(configured));
    reg.gauge("table.layout").set(0.0);
}

void
MemoTable::clear()
{
    for (auto &tt : types_) {
        tt.buckets.clear();
        tt.entries = 0;
        tt.bytes = 0;
    }
}

}  // namespace core
}  // namespace snip
