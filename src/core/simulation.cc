#include "core/simulation.h"

#include <algorithm>
#include <array>

#include "core/output_diff.h"
#include "events/binder.h"
#include "events/sensor_manager.h"
#include "trace/recorder.h"
#include "util/bytes.h"
#include "util/logging.h"
#include "util/rng.h"

namespace snip {
namespace core {

double
SessionStats::coverageInstr() const
{
    return instr_total
               ? static_cast<double>(instr_skipped) /
                     static_cast<double>(instr_total)
               : 0.0;
}

double
SessionStats::coverageIpWork() const
{
    return ip_work_total > 0 ? ip_work_skipped / ip_work_total : 0.0;
}

double
SessionStats::errorFieldRate() const
{
    return output_fields_total
               ? static_cast<double>(output_fields_wrong) /
                     static_cast<double>(output_fields_total)
               : 0.0;
}

SessionResult
runSession(games::Game &game, Scheme &scheme, const SimulationConfig &cfg)
{
    if (cfg.duration_s <= 0)
        util::fatal("runSession: non-positive duration %f",
                    cfg.duration_s);

    game.reset();
    soc::Soc soc(cfg.model);
    soc.setInUse(true);

    events::SensorManager sensor_mgr(soc);
    events::BinderChannel binder(soc);
    trace::EventRecorder recorder(game.name());
    if (cfg.record_events) {
        binder.setTap([&recorder](const events::EventObject &ev) {
            recorder.onEvent(ev);
        });
    }

    util::Rng rng(util::mixCombine(cfg.seed,
                                   util::fnv1a(game.name())));
    SessionStats stats;

    // Pre-resolved obs handles: name lookup happens once here, so
    // each record point on the event path costs one null-check
    // branch when observability is off and a pointer bump when on.
    struct {
        obs::Counter *events = nullptr;
        obs::Counter *frames = nullptr;
        obs::Counter *useless = nullptr;
        obs::Counter *lookups = nullptr;
        obs::Counter *hits = nullptr;
        obs::Counter *misses = nullptr;
        obs::Counter *bytes = nullptr;
        obs::Counter *candidates = nullptr;
        obs::Counter *shortcircuit = nullptr;
        obs::Counter *full = nullptr;
        obs::Counter *audited = nullptr;
        obs::Counter *err_sc = nullptr;
        obs::Counter *err_temp = nullptr;
        obs::Counter *err_hist = nullptr;
        obs::Counter *err_ext = nullptr;
        util::Log2Histogram *bytes_hist = nullptr;
    } oc;
    if (cfg.obs) {
        obs::Registry &r = *cfg.obs;
        oc.events = &r.counter("session.events");
        oc.frames = &r.counter("session.frames");
        oc.useless = &r.counter("session.useless_events");
        oc.lookups = &r.counter("lookup.lookups");
        oc.hits = &r.counter("lookup.hits");
        oc.misses = &r.counter("lookup.misses");
        oc.bytes = &r.counter("lookup.bytes");
        oc.candidates = &r.counter("lookup.candidates");
        oc.shortcircuit = &r.counter("decide.shortcircuit");
        oc.full = &r.counter("decide.full");
        oc.audited = &r.counter("decide.audited");
        oc.err_sc = &r.counter("decide.err.shortcircuits");
        oc.err_temp = &r.counter("decide.err.temp_only");
        oc.err_hist = &r.counter("decide.err.history");
        oc.err_ext = &r.counter("decide.err.extern");
        oc.bytes_hist = &r.histogram("lookup.bytes_hist");
    }

    // Per-mix-entry next arrival times (jittered periodic arrivals).
    const auto &mix = game.params().mix;
    std::vector<double> next_at(mix.size());
    for (size_t i = 0; i < mix.size(); ++i)
        next_at[i] = rng.uniformReal() / mix[i].rate_hz;

    // Per-IP last-use clock for the sleep policy.
    std::array<double, soc::kNumIpKinds> ip_last_use;
    ip_last_use.fill(0.0);
    auto touch_ip = [&](soc::IpKind k, double now) {
        ip_last_use[static_cast<int>(k)] = now;
    };

    const games::GameParams &gp = game.params();
    double frame_dt = 1.0 / gp.frame_rate;
    double now = 0.0;

    auto process_event = [&](const events::EventObject &ev) {
        double at = ev.timestamp;
        sensor_mgr.deliver(ev);
        binder.transfer(ev);

        games::HandlerExecution truth = game.process(ev);
        Decision d = scheme.decide(game, ev, truth);

        ++stats.events;
        stats.instr_total += truth.cpu_instructions;
        stats.ip_work_total += truth.ipWorkUnits();
        stats.output_fields_total +=
            static_cast<uint64_t>(truth.outputs.size());
        if (truth.useless)
            ++stats.useless_events;

        if (oc.events) {
            oc.events->add(1);
            if (truth.useless)
                oc.useless->add(1);
            if (d.lookup_ran) {
                oc.lookups->add(1);
                (d.lookup_hit ? oc.hits : oc.misses)->add(1);
                oc.bytes->add(d.lookup_bytes);
                oc.candidates->add(d.lookup_candidates);
                oc.bytes_hist->add(
                    static_cast<double>(d.lookup_bytes));
            }
            if (d.audited)
                oc.audited->add(1);
            else if (d.shortcircuit)
                oc.shortcircuit->add(1);
            else
                oc.full->add(1);
        }

        if (d.lookup_bytes > 0 && d.charge_lookup) {
            uint64_t instr = cfg.lookup_instr_base +
                             static_cast<uint64_t>(
                                 cfg.lookup_instr_per_byte *
                                 static_cast<double>(d.lookup_bytes));
            double before = soc.cpu().dynamicEnergy() +
                            soc.memory().dynamicEnergy();
            soc.executeCpu(instr, soc::CpuCluster::Big);
            soc.accessMemory(d.lookup_bytes);
            stats.lookup_energy_j += soc.cpu().dynamicEnergy() +
                                     soc.memory().dynamicEnergy() -
                                     before;
        }
        stats.lookup_bytes += d.lookup_bytes;
        stats.lookup_candidates += d.lookup_candidates;

        if (d.shortcircuit) {
            ++stats.shortcircuits;
            stats.instr_skipped += truth.cpu_instructions;
            stats.ip_work_skipped += truth.ipWorkUnits();
            game.applyOutputs(d.outputs);
            OutputDiff diff =
                diffOutputs(d.outputs, truth.outputs, game.schema());
            stats.output_fields_wrong += diff.fields_wrong;
            if (diff.anyWrong()) {
                ++stats.erroneous_shortcircuits;
                if (diff.wrong_extern)
                    ++stats.err_extern;
                else if (diff.wrong_history)
                    ++stats.err_history;
                else
                    ++stats.err_temp_only;
                if (oc.err_sc) {
                    oc.err_sc->add(1);
                    if (diff.wrong_extern)
                        oc.err_ext->add(1);
                    else if (diff.wrong_history)
                        oc.err_hist->add(1);
                    else
                        oc.err_temp->add(1);
                }
            }
            return;
        }

        // Full (or partially skipped) processing.
        uint64_t skipped = static_cast<uint64_t>(
            static_cast<double>(truth.cpu_instructions) *
            d.cpu_skip_fraction);
        stats.instr_skipped += skipped;
        soc.executeCpu(truth.cpu_instructions - skipped,
                       soc::CpuCluster::Big);
        soc.accessMemory(truth.memory_bytes);
        if (d.skip_ips) {
            stats.ip_work_skipped += truth.ipWorkUnits();
        } else {
            for (const auto &c : truth.ip_calls) {
                soc.invokeIp(c.kind, c.work_units);
                touch_ip(c.kind, at);
            }
        }
        if (truth.useless)
            stats.useless_instr_executed +=
                truth.cpu_instructions - skipped;
        game.applyOutputs(truth.outputs);
        scheme.observe(truth);
    };

    // Batched decide path: generate same-frame events in blocks of
    // up to `block`, hand each block to the scheme's prepareBatch()
    // hint, then run the unchanged per-event sequential stage. Event
    // generation is state-independent (makeEvent touches only the
    // rng and the event-generation memory) and consumes the rng in
    // exactly the scalar order — makeEvent then the arrival draw,
    // per event — so sessions are bitwise-identical to block = 1.
    uint32_t block = cfg.batch_block
                         ? cfg.batch_block
                         : std::max<uint32_t>(1, scheme.batchBlock());
    std::vector<events::EventObject> block_events;
    block_events.reserve(std::min<uint32_t>(block, 1024));

    while (now < cfg.duration_s) {
        double frame_end = std::min(now + frame_dt, cfg.duration_s);

        // Deliver all events arriving within this frame, in time
        // order across mix entries.
        for (;;) {
            block_events.clear();
            while (block_events.size() < block) {
                size_t best = SIZE_MAX;
                for (size_t i = 0; i < mix.size(); ++i) {
                    if (next_at[i] < frame_end &&
                        (best == SIZE_MAX ||
                         next_at[i] < next_at[best]))
                        best = i;
                }
                if (best == SIZE_MAX)
                    break;
                block_events.push_back(game.makeEvent(
                    mix[best].type, next_at[best], rng));
                next_at[best] += rng.uniformReal(0.7, 1.3) /
                                 mix[best].rate_hz;
            }
            if (block_events.empty())
                break;
            if (block_events.size() > 1)
                scheme.prepareBatch({block_events.data(),
                                     block_events.size()});
            for (const auto &ev : block_events)
                process_event(ev);
        }

        // Per-frame background load (composition, UI animation,
        // audio stream, game-loop tick on the little cluster).
        soc.invokeIp(soc::IpKind::Display, gp.frame_display_units);
        touch_ip(soc::IpKind::Display, frame_end);
        if (gp.frame_gpu_units > 0) {
            soc.invokeIp(soc::IpKind::Gpu, gp.frame_gpu_units);
            touch_ip(soc::IpKind::Gpu, frame_end);
        }
        if (gp.audio_units_per_s > 0) {
            soc.invokeIp(soc::IpKind::Audio,
                         gp.audio_units_per_s * frame_dt);
            touch_ip(soc::IpKind::Audio, frame_end);
        }
        soc.executeCpu(
            static_cast<uint64_t>(gp.frame_cpu_minstr * 1e6),
            soc::CpuCluster::Little);

        // IP sleep policy: gate blocks idle longer than the
        // scheme's timeout. The display never gates while the
        // screen is on.
        double timeout = scheme.ipSleepTimeout();
        for (int k = 0; k < soc::kNumIpKinds; ++k) {
            auto kind = static_cast<soc::IpKind>(k);
            if (kind == soc::IpKind::Display)
                continue;
            if (frame_end - ip_last_use[k] > timeout)
                soc.ip(kind).setSleeping(true);
        }

        soc.advance(frame_end - now);
        now = frame_end;
        if (oc.frames)
            oc.frames->add(1);
    }

    SessionResult result{soc.report(), stats, recorder.trace()};

    if (cfg.obs) {
        // End-of-session totals and derived rates. When registries
        // of several sessions are merged, counters stay additive;
        // the rate gauges are last-writer and should be recomputed
        // from the merged counters (see DESIGN.md).
        obs::Registry &r = *cfg.obs;
        r.counter("session.instr_total").add(stats.instr_total);
        r.counter("session.instr_skipped").add(stats.instr_skipped);
        r.counter("session.output_fields")
            .add(stats.output_fields_total);
        r.counter("session.output_fields_wrong")
            .add(stats.output_fields_wrong);
        r.gauge("session.duration_s").set(cfg.duration_s);
        r.gauge("session.energy_j").set(result.report.total());
        r.gauge("session.lookup_energy_j")
            .set(stats.lookup_energy_j);
        uint64_t looked = oc.hits->value() + oc.misses->value();
        r.gauge("session.hit_rate")
            .set(looked ? static_cast<double>(oc.hits->value()) /
                              static_cast<double>(looked)
                        : 0.0);
        r.gauge("session.error_field_rate")
            .set(stats.errorFieldRate());
        r.gauge("session.coverage_instr").set(stats.coverageInstr());
    }
    return result;
}

util::Power
idlePhonePower(const soc::EnergyModel &model)
{
    // The paper's "idle phone" reference (~20 h) is a device that is
    // on — screen lit at the launcher, radios up — but not playing:
    // display refresh plus background OS work, no game processing.
    soc::Soc soc(model);
    soc.setInUse(true);
    for (int k = 0; k < soc::kNumIpKinds; ++k) {
        if (static_cast<soc::IpKind>(k) != soc::IpKind::Display)
            soc.ip(static_cast<soc::IpKind>(k)).setSleeping(true);
    }
    // One simulated minute of 60 fps launcher idling.
    const double frame_dt = 1.0 / 60.0;
    for (int f = 0; f < 3600; ++f) {
        soc.invokeIp(soc::IpKind::Display, 1.0);
        soc.executeCpu(1'500'000, soc::CpuCluster::Little);
        if (f % 30 == 0)
            soc.executeCpu(6'000'000, soc::CpuCluster::Little);
        soc.accessMemory(200'000);
        soc.advance(frame_dt);
    }
    return soc.report().averagePower();
}

}  // namespace core
}  // namespace snip
