#include "core/simulation.h"

#include <algorithm>
#include <array>

#include "core/output_diff.h"
#include "core/pipeline.h"
#include "core/session_parts.h"
#include "util/bytes.h"
#include "util/logging.h"
#include "util/rng.h"

namespace snip {
namespace core {

double
SessionStats::coverageInstr() const
{
    return instr_total
               ? static_cast<double>(instr_skipped) /
                     static_cast<double>(instr_total)
               : 0.0;
}

double
SessionStats::coverageIpWork() const
{
    return ip_work_total > 0 ? ip_work_skipped / ip_work_total : 0.0;
}

double
SessionStats::errorFieldRate() const
{
    return output_fields_total
               ? static_cast<double>(output_fields_wrong) /
                     static_cast<double>(output_fields_total)
               : 0.0;
}

namespace detail {

uint32_t
effectiveBlock(const SimulationConfig &cfg, const Scheme &scheme)
{
    return cfg.batch_block
               ? cfg.batch_block
               : std::max<uint32_t>(1, scheme.batchBlock());
}

EventGen::EventGen(games::Game &game, const SimulationConfig &cfg,
                   uint32_t block)
    : game_(game), cfg_(cfg), block_(block),
      rng_(util::mixCombine(cfg.seed, util::fnv1a(game.name()))),
      frame_dt_(1.0 / game.params().frame_rate)
{
    const auto &mix = game_.params().mix;
    next_at_.resize(mix.size());
    for (size_t i = 0; i < mix.size(); ++i)
        next_at_[i] = rng_.uniformReal() / mix[i].rate_hz;
}

bool
EventGen::next(GenItem &item)
{
    if (done_)
        return false;
    if (!in_frame_) {
        if (now_ >= cfg_.duration_s) {
            done_ = true;
            return false;
        }
        frame_end_ = std::min(now_ + frame_dt_, cfg_.duration_s);
        in_frame_ = true;
    }

    // Collect the next block of events arriving within this frame,
    // in time order across mix entries. Rng consumption order is
    // the sequential loop's: makeEvent, then the arrival draw, per
    // event.
    const auto &mix = game_.params().mix;
    item.events.clear();
    item.has_probes = false;
    while (item.events.size() < block_) {
        size_t best = SIZE_MAX;
        for (size_t i = 0; i < mix.size(); ++i) {
            if (next_at_[i] < frame_end_ &&
                (best == SIZE_MAX || next_at_[i] < next_at_[best]))
                best = i;
        }
        if (best == SIZE_MAX)
            break;
        item.events.push_back(
            game_.makeEvent(mix[best].type, next_at_[best], rng_));
        next_at_[best] +=
            rng_.uniformReal(0.7, 1.3) / mix[best].rate_hz;
    }
    if (!item.events.empty()) {
        item.kind = GenItem::Kind::Block;
        return true;
    }

    item.kind = GenItem::Kind::FrameEnd;
    item.frame_end = frame_end_;
    item.dt = frame_end_ - now_;
    now_ = frame_end_;
    in_frame_ = false;
    return true;
}

SessionBody::SessionBody(games::Game &game, Scheme &scheme,
                         const SimulationConfig &cfg)
    : game_(game), scheme_(scheme), cfg_(cfg), soc_(cfg.model),
      sensorMgr_(soc_), binder_(soc_), recorder_(game.name())
{
    soc_.setInUse(true);
    if (cfg_.record_events) {
        binder_.setTap([this](const events::EventObject &ev) {
            recorder_.onEvent(ev);
        });
    }
    ipLastUse_.fill(0.0);

    // Pre-resolved obs handles: name lookup happens once here, so
    // each record point on the event path costs one null-check
    // branch when observability is off and a pointer bump when on.
    if (cfg_.obs) {
        obs::Registry &r = *cfg_.obs;
        oc_.events = &r.counter("session.events");
        oc_.frames = &r.counter("session.frames");
        oc_.useless = &r.counter("session.useless_events");
        oc_.lookups = &r.counter("lookup.lookups");
        oc_.hits = &r.counter("lookup.hits");
        oc_.misses = &r.counter("lookup.misses");
        oc_.bytes = &r.counter("lookup.bytes");
        oc_.candidates = &r.counter("lookup.candidates");
        oc_.shortcircuit = &r.counter("decide.shortcircuit");
        oc_.full = &r.counter("decide.full");
        oc_.audited = &r.counter("decide.audited");
        oc_.err_sc = &r.counter("decide.err.shortcircuits");
        oc_.err_temp = &r.counter("decide.err.temp_only");
        oc_.err_hist = &r.counter("decide.err.history");
        oc_.err_ext = &r.counter("decide.err.extern");
        oc_.bytes_hist = &r.histogram("lookup.bytes_hist");
    }
}

void
SessionBody::processEvent(const events::EventObject &ev)
{
    double at = ev.timestamp;
    sensorMgr_.deliver(ev);
    binder_.transfer(ev);

    games::HandlerExecution truth = game_.process(ev);
    Decision d = scheme_.decide(game_, ev, truth);

    ++stats_.events;
    stats_.instr_total += truth.cpu_instructions;
    stats_.ip_work_total += truth.ipWorkUnits();
    stats_.output_fields_total +=
        static_cast<uint64_t>(truth.outputs.size());
    if (truth.useless)
        ++stats_.useless_events;

    if (oc_.events) {
        oc_.events->add(1);
        if (truth.useless)
            oc_.useless->add(1);
        if (d.lookup_ran) {
            oc_.lookups->add(1);
            (d.lookup_hit ? oc_.hits : oc_.misses)->add(1);
            oc_.bytes->add(d.lookup_bytes);
            oc_.candidates->add(d.lookup_candidates);
            oc_.bytes_hist->add(static_cast<double>(d.lookup_bytes));
        }
        if (d.audited)
            oc_.audited->add(1);
        else if (d.shortcircuit)
            oc_.shortcircuit->add(1);
        else
            oc_.full->add(1);
    }

    if (d.lookup_bytes > 0 && d.charge_lookup) {
        uint64_t instr =
            cfg_.lookup_instr_base +
            static_cast<uint64_t>(
                cfg_.lookup_instr_per_byte *
                static_cast<double>(d.lookup_bytes));
        double before = soc_.cpu().dynamicEnergy() +
                        soc_.memory().dynamicEnergy();
        soc_.executeCpu(instr, soc::CpuCluster::Big);
        soc_.accessMemory(d.lookup_bytes);
        stats_.lookup_energy_j += soc_.cpu().dynamicEnergy() +
                                  soc_.memory().dynamicEnergy() -
                                  before;
    }
    stats_.lookup_bytes += d.lookup_bytes;
    stats_.lookup_candidates += d.lookup_candidates;

    if (d.shortcircuit) {
        ++stats_.shortcircuits;
        stats_.instr_skipped += truth.cpu_instructions;
        stats_.ip_work_skipped += truth.ipWorkUnits();
        game_.applyOutputs(d.outputs);
        OutputDiff diff =
            diffOutputs(d.outputs, truth.outputs, game_.schema());
        stats_.output_fields_wrong += diff.fields_wrong;
        if (diff.anyWrong()) {
            ++stats_.erroneous_shortcircuits;
            if (diff.wrong_extern)
                ++stats_.err_extern;
            else if (diff.wrong_history)
                ++stats_.err_history;
            else
                ++stats_.err_temp_only;
            if (oc_.err_sc) {
                oc_.err_sc->add(1);
                if (diff.wrong_extern)
                    oc_.err_ext->add(1);
                else if (diff.wrong_history)
                    oc_.err_hist->add(1);
                else
                    oc_.err_temp->add(1);
            }
        }
        return;
    }

    // Full (or partially skipped) processing.
    uint64_t skipped = static_cast<uint64_t>(
        static_cast<double>(truth.cpu_instructions) *
        d.cpu_skip_fraction);
    stats_.instr_skipped += skipped;
    soc_.executeCpu(truth.cpu_instructions - skipped,
                    soc::CpuCluster::Big);
    soc_.accessMemory(truth.memory_bytes);
    if (d.skip_ips) {
        stats_.ip_work_skipped += truth.ipWorkUnits();
    } else {
        for (const auto &c : truth.ip_calls) {
            soc_.invokeIp(c.kind, c.work_units);
            ipLastUse_[static_cast<int>(c.kind)] = at;
        }
    }
    if (truth.useless)
        stats_.useless_instr_executed +=
            truth.cpu_instructions - skipped;
    game_.applyOutputs(truth.outputs);
    scheme_.observe(truth);
}

void
SessionBody::frameEnd(double frame_end, double dt)
{
    // Per-frame background load (composition, UI animation, audio
    // stream, game-loop tick on the little cluster).
    const games::GameParams &gp = game_.params();
    soc_.invokeIp(soc::IpKind::Display, gp.frame_display_units);
    ipLastUse_[static_cast<int>(soc::IpKind::Display)] = frame_end;
    if (gp.frame_gpu_units > 0) {
        soc_.invokeIp(soc::IpKind::Gpu, gp.frame_gpu_units);
        ipLastUse_[static_cast<int>(soc::IpKind::Gpu)] = frame_end;
    }
    if (gp.audio_units_per_s > 0) {
        soc_.invokeIp(soc::IpKind::Audio,
                      gp.audio_units_per_s * (1.0 / gp.frame_rate));
        ipLastUse_[static_cast<int>(soc::IpKind::Audio)] = frame_end;
    }
    soc_.executeCpu(static_cast<uint64_t>(gp.frame_cpu_minstr * 1e6),
                    soc::CpuCluster::Little);

    // IP sleep policy: gate blocks idle longer than the scheme's
    // timeout. The display never gates while the screen is on.
    double timeout = scheme_.ipSleepTimeout();
    for (int k = 0; k < soc::kNumIpKinds; ++k) {
        auto kind = static_cast<soc::IpKind>(k);
        if (kind == soc::IpKind::Display)
            continue;
        if (frame_end - ipLastUse_[k] > timeout)
            soc_.ip(kind).setSleeping(true);
    }

    soc_.advance(dt);
    if (oc_.frames)
        oc_.frames->add(1);
}

SessionResult
SessionBody::finalize()
{
    SessionResult result{soc_.report(), stats_, recorder_.trace()};

    if (cfg_.obs) {
        // End-of-session totals and derived rates. When registries
        // of several sessions are merged, counters stay additive;
        // the rate gauges are last-writer and should be recomputed
        // from the merged counters (see DESIGN.md).
        obs::Registry &r = *cfg_.obs;
        r.counter("session.instr_total").add(stats_.instr_total);
        r.counter("session.instr_skipped").add(stats_.instr_skipped);
        r.counter("session.output_fields")
            .add(stats_.output_fields_total);
        r.counter("session.output_fields_wrong")
            .add(stats_.output_fields_wrong);
        r.gauge("session.duration_s").set(cfg_.duration_s);
        r.gauge("session.energy_j").set(result.report.total());
        r.gauge("session.lookup_energy_j")
            .set(stats_.lookup_energy_j);
        uint64_t looked = oc_.hits->value() + oc_.misses->value();
        r.gauge("session.hit_rate")
            .set(looked ? static_cast<double>(oc_.hits->value()) /
                              static_cast<double>(looked)
                        : 0.0);
        r.gauge("session.error_field_rate")
            .set(stats_.errorFieldRate());
        r.gauge("session.coverage_instr")
            .set(stats_.coverageInstr());
    }
    return result;
}

}  // namespace detail

SessionResult
runSession(games::Game &game, Scheme &scheme,
           const SimulationConfig &cfg)
{
    if (cfg.duration_s <= 0)
        util::fatal("runSession: non-positive duration %f",
                    cfg.duration_s);

    if (cfg.pipeline.enabled) {
        Pipeline pipeline(game, scheme, cfg);
        return pipeline.run();
    }

    game.reset();
    uint32_t block = detail::effectiveBlock(cfg, scheme);
    detail::EventGen gen(game, cfg, block);
    detail::SessionBody body(game, scheme, cfg);

    // Sequential drive of the same two halves the pipeline runs on
    // separate workers: per block, the scheme's prepareBatch hint
    // (SNIP resolves its frozen index probes type-grouped), then
    // the unchanged per-event stage. Event generation is
    // state-independent and consumes the rng in exactly this order
    // either way, so sessions are bitwise-identical at every block
    // size and in both runtimes.
    detail::GenItem item;
    while (gen.next(item)) {
        if (item.kind == detail::GenItem::Kind::Block) {
            if (item.events.size() > 1)
                scheme.prepareBatch(
                    {item.events.data(), item.events.size()});
            for (const auto &ev : item.events)
                body.processEvent(ev);
        } else {
            body.frameEnd(item.frame_end, item.dt);
        }
    }
    return body.finalize();
}

util::Power
idlePhonePower(const soc::EnergyModel &model)
{
    // The paper's "idle phone" reference (~20 h) is a device that is
    // on — screen lit at the launcher, radios up — but not playing:
    // display refresh plus background OS work, no game processing.
    soc::Soc soc(model);
    soc.setInUse(true);
    for (int k = 0; k < soc::kNumIpKinds; ++k) {
        if (static_cast<soc::IpKind>(k) != soc::IpKind::Display)
            soc.ip(static_cast<soc::IpKind>(k)).setSleeping(true);
    }
    // One simulated minute of 60 fps launcher idling.
    const double frame_dt = 1.0 / 60.0;
    for (int f = 0; f < 3600; ++f) {
        soc.invokeIp(soc::IpKind::Display, 1.0);
        soc.executeCpu(1'500'000, soc::CpuCluster::Little);
        if (f % 30 == 0)
            soc.executeCpu(6'000'000, soc::CpuCluster::Little);
        soc.accessMemory(200'000);
        soc.advance(frame_dt);
    }
    return soc.report().averagePower();
}

}  // namespace core
}  // namespace snip
