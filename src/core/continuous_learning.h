/**
 * @file
 * Continuous learning (paper §V-B Option 2 and Fig. 12): loop
 * record -> replay -> PFI -> deploy across play sessions. The first
 * deployment is built from an artificially insufficient profile, so
 * early sessions short-circuit erroneously; as every session's
 * events are shipped to the "cloud" and replayed into the growing
 * profile, re-learning drives the erroneous-output-field rate
 * toward zero. An optional confidence gate withholds
 * short-circuiting until the model's tested error clears a
 * threshold (the paper's suggested way to avoid exposing users to
 * the bad early epochs).
 */

#ifndef SNIP_CORE_CONTINUOUS_LEARNING_H
#define SNIP_CORE_CONTINUOUS_LEARNING_H

#include <functional>
#include <vector>

#include "core/simulation.h"
#include "util/bytes.h"

namespace snip {
namespace core {

/** Learner knobs. */
struct LearningConfig {
    /** Number of play sessions (training epochs). */
    int epochs = 50;
    /** Length of each play session (s). */
    double session_s = 30.0;
    /**
     * Records kept from the seed session's profile — kept small to
     * reproduce the paper's insufficient-initial-profile setup.
     */
    size_t initial_profile_records = 30;
    /** Cap on the accumulated profile (drop-oldest beyond it). */
    size_t max_profile_records = 200000;
    /** Re-run PFI selection every this many epochs (>= 1). */
    int relearn_every = 1;
    /**
     * Incremental Shrink across epochs: hold the Shrink seed stable
     * (instead of remixing it per epoch) and carry a ShrinkCaches
     * through every re-learn, so a type whose accumulated evidence
     * is unchanged since the last epoch replays its cached selection
     * (counter shrink.types_cached) and an unchanged PFI refresh is
     * served from cache (shrink.pfi.cols_cached) instead of
     * re-scored (shrink.pfi.cols_rescored). Turns a quiet epoch from
     * O(full retrain) into O(changed columns) without changing any
     * individual epoch's produced model for the seed it ran with.
     */
    bool incremental_shrink = false;
    /** Withhold short-circuiting until tested error <= gate AND
     *  enough profile evidence has accumulated. */
    bool confidence_gate = false;
    double gate_threshold = 0.005;
    size_t gate_min_records = 600;

    SnipConfig snip;
    SimulationConfig sim;

    /**
     * Optional lossy-OTA-transport hook, applied to each epoch's
     * serialized package before the device unpacks it. Lets tests
     * and demos inject corruption (truncation, bit flips) to
     * exercise the rejection fallback; null means the transport is
     * lossless.
     */
    std::function<void(util::ByteBuffer &)> ota_tamper;

    /**
     * Optional deploy-seam tap, handed each epoch's serialized
     * package as packed — *before* any ota_tamper transport loss —
     * so a backend (e.g. the fleet model registry) can archive the
     * exact bytes the learner shipped. Must not mutate the buffer's
     * contents; null means no one is listening.
     */
    std::function<void(const util::ByteBuffer &)> on_publish;

    /**
     * Optional metrics sink (nullptr = observability off): per-
     * epoch `learn.*` counters/gauges (deployed / gate-withheld /
     * rejected-package counts, payload-byte histogram), the
     * `span.learn.epoch` timer, and — shared into the nested
     * Shrink runs and sessions — their `span.shrink.*` and
     * `session.*` metrics. Never alters learning.
     */
    obs::Registry *obs = nullptr;
};

/** Per-epoch outcome. */
struct EpochResult {
    int epoch = 0;
    /** Erroneous-output-field rate during the session (Fig. 12 y). */
    double error_field_rate = 0.0;
    /** Instruction-weighted short-circuit coverage. */
    double coverage = 0.0;
    /** Whole-session energy (J). */
    double energy_j = 0.0;
    /** Profile records accumulated before this session. */
    size_t profile_records = 0;
    /** Deployed table size (bytes). */
    uint64_t table_bytes = 0;
    /** Serialized OTA package size of the model the device actually
     *  deployed this epoch — the paper's headline ~kB-scale
     *  over-the-air payload. 0 when nothing is deployed (e.g. the
     *  epoch's package was rejected and no prior model survives). */
    uint64_t payload_bytes = 0;
    /** Whether short-circuiting was enabled (confidence gate). */
    bool deployed = true;
    /** The confidence gate withheld an otherwise-deployable model. */
    bool gate_withheld = false;
    /** OTA packages rejected so far (cumulative across epochs). */
    uint64_t rejected_packages = 0;
};

/**
 * Tested error of a model: the per-type holdout selection errors
 * aggregated with each type weighted by the profiled record count
 * behind it, so a high-error type with almost no evidence cannot
 * dominate the confidence gate.
 */
double testedModelError(const SnipModel &model);

/** Run the continuous-learning loop on one game. */
class ContinuousLearner
{
  public:
    /**
     * @param game The game under study (reset per session).
     * @param replica A second instance of the same game used as the
     *        cloud emulator for replay (must share parameters).
     */
    ContinuousLearner(games::Game &game, games::Game &replica,
                      LearningConfig cfg = {});

    /** Run all epochs and return the error trajectory. */
    std::vector<EpochResult> run();

  private:
    games::Game &game_;
    games::Game &replica_;
    LearningConfig cfg_;
};

}  // namespace core
}  // namespace snip

#endif  // SNIP_CORE_CONTINUOUS_LEARNING_H
