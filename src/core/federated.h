/**
 * @file
 * Federated SNIP backend (paper §VII-C future direction:
 * "techniques such as federated AI can be explored ... for reducing
 * the backend overheads as well as performing collective learning").
 *
 * Centralized backend (the paper's evaluated design): every user
 * uploads their raw event stream; the cloud replays all of them and
 * runs one PFI selection over the merged profile.
 *
 * Federated backend: each user runs PFI selection on their *own*
 * profile locally; only the per-type selected-field votes and the
 * locally-projected table entries leave the device. The server
 * majority-votes the necessary-input sets and unions the tables.
 * Raw traces never leave the device and the per-device selection
 * work is a fraction of the centralized job.
 */

#ifndef SNIP_CORE_FEDERATED_H
#define SNIP_CORE_FEDERATED_H

#include <string>
#include <vector>

#include "core/snip.h"

namespace snip {
namespace core {

/** Federation knobs. */
struct FederatedConfig {
    /** Number of participating users. */
    int num_users = 5;
    /** Play time recorded per user (s). */
    double session_s = 150.0;
    uint64_t seed = 0xfede7a7eULL;
    /** Fraction of users that must select a field to keep it. */
    double vote_fraction = 0.5;
    /** Per-user selection config. */
    SnipConfig snip;
};

/** What the backend consumed/transferred. */
struct BackendCost {
    /** Profile records pushed through one selection job (the
     *  dominant backend compute term — paper: 2 days/2 min trace). */
    uint64_t selection_records = 0;
    /** Raw bytes uploaded from devices. */
    uint64_t uploaded_bytes = 0;
};

/** Outcome of building a deployable model via either backend. */
struct FederatedResult {
    SnipModel model;
    BackendCost cost;
    /** Per event type: how many users voted for each kept field. */
    std::vector<std::pair<events::EventType, size_t>> deployed_types;
};

/**
 * Votes a field needs to clear `vote_fraction` of `num_users`:
 * ceil(vote_fraction * num_users), computed with exact integer
 * arithmetic on the double's mantissa — no epsilon fudge — so e.g.
 * 0.5 of 2 users is exactly 1 vote and 1.0 of 10 users is exactly
 * 10, regardless of how the product rounds in floating point.
 * Non-positive fractions need 1 vote (a kept field must be selected
 * by someone); num_users <= 0 needs 0.
 */
size_t federatedVotesNeeded(double vote_fraction, int num_users);

/**
 * Build a model the centralized way: merge all users' replayed
 * profiles and run a single selection.
 *
 * @param game_name Which game all users play.
 */
FederatedResult buildCentralized(const std::string &game_name,
                                 const FederatedConfig &cfg = {});

/**
 * Build a model the federated way: per-user selection, majority
 * vote on fields, union of locally projected tables.
 */
FederatedResult buildFederated(const std::string &game_name,
                               const FederatedConfig &cfg = {});

/**
 * Evaluate a deployable model on a held-out user (a seed none of
 * the training users used).
 */
struct FederatedEval {
    double coverage = 0.0;
    double error_field_rate = 0.0;
    double energy_savings = 0.0;
};
FederatedEval evaluateModel(const std::string &game_name,
                            const SnipModel &model, uint64_t seed,
                            double session_s = 45.0);

}  // namespace core
}  // namespace snip

#endif  // SNIP_CORE_FEDERATED_H
