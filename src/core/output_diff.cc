#include "core/output_diff.h"

namespace snip {
namespace core {

OutputDiff
diffOutputs(const std::vector<events::FieldValue> &applied,
            const std::vector<events::FieldValue> &truth,
            const events::FieldSchema &schema)
{
    OutputDiff d;
    size_t a = 0, t = 0;
    auto classify = [&](events::FieldId fid) {
        ++d.fields_wrong;
        switch (schema.def(fid).out_cat) {
          case events::OutputCategory::Temp:
            ++d.wrong_temp;
            break;
          case events::OutputCategory::History:
            ++d.wrong_history;
            break;
          case events::OutputCategory::Extern:
            ++d.wrong_extern;
            break;
        }
    };
    while (a < applied.size() || t < truth.size()) {
        ++d.fields_total;
        if (t >= truth.size() ||
            (a < applied.size() && applied[a].id < truth[t].id)) {
            classify(applied[a].id);  // spurious write
            ++a;
        } else if (a >= applied.size() || truth[t].id < applied[a].id) {
            classify(truth[t].id);    // missing write
            ++t;
        } else {
            if (applied[a].value != truth[t].value)
                classify(truth[t].id);
            ++a;
            ++t;
        }
    }
    return d;
}

}  // namespace core
}  // namespace snip
