/**
 * @file
 * The session runner: plays a game for a configured duration under
 * a scheme, charging the simulated SoC for the full event path —
 * sensor sampling, framework plumbing, Binder IPC, handler
 * execution (or its short-circuit), per-frame background rendering
 * — while applying the IP sleep policy and keeping the error /
 * coverage / overhead accounting the benches report.
 */

#ifndef SNIP_CORE_SIMULATION_H
#define SNIP_CORE_SIMULATION_H

#include <functional>
#include <optional>

#include "core/scheme.h"
#include "soc/soc.h"
#include "trace/profile.h"

namespace snip {
namespace core {

/**
 * Pipelined async session runtime knobs (see core/pipeline.h and
 * DESIGN.md "Pipelined session runtime"). When enabled, runSession
 * decomposes the session loop into three stages — event generation,
 * SNIP probe resolution, handler execution + SoC charging —
 * connected by bounded lock-free SPSC ring buffers with
 * backpressure and a per-stage deadline. Contract: a pipelined
 * session reproduces the sequential session's decisions, energy
 * accounting, and SessionStats bitwise at every queue capacity and
 * worker count (per-session ordering is fixed; only cross-session
 * interleaving is free).
 */
struct PipelineConfig {
    /** Run the session through the staged pipeline. */
    bool enabled = false;
    /**
     * Slots per stage queue; rounded up to a power of two, min 1.
     * Small capacities exercise backpressure, large ones decouple
     * the stages further — results are identical either way.
     */
    uint32_t queue_capacity = 16;
    /**
     * Stage worker threads, clamped to [1, 3]; 0 uses
     * min(3, defaultThreadCount()) so SNIP_THREADS caps stage
     * parallelism like every other parallel phase. Stages are
     * statically assigned round-robin to the workers; with one
     * worker the pipeline runs cooperatively on the calling thread
     * (queues, backpressure and metrics all still exercised).
     */
    unsigned workers = 0;
    /**
     * Per-stage soft deadline for processing one queue item (µs).
     * The timing controller counts (and exposes via
     * `pipeline.stage.*.deadline_misses`) items whose stage time
     * exceeds it; 0 disables deadline tracking.
     */
    double stage_deadline_us = 0.0;
    /**
     * Test hook: called by stage @p stage (0 = gen, 1 = decide,
     * 2 = exec) before it processes its @p item-th queue item.
     * Used by the determinism fuzz to inject stage stalls; must not
     * touch session state.
     */
    std::function<void(int stage, uint64_t item)> test_stall;
};

/** Session knobs. */
struct SimulationConfig {
    /** Simulated play time (s). */
    double duration_s = 120.0;
    /** Seed for the user/event stream. */
    uint64_t seed = 0x5e551011ULL;
    /** Record the delivered event stream into the result. */
    bool record_events = false;
    /** Energy model (defaults to the Snapdragon-821 calibration). */
    soc::EnergyModel model = soc::EnergyModel::snapdragon821();

    /**
     * Lookup-path cost model: big-core instructions per scanned
     * byte plus a fixed dispatch cost per event. Calibrated so the
     * measured SNIP overheads land on the paper's Fig. 11c range
     * (~1-12% of energy, avg ~3%).
     */
    double lookup_instr_per_byte = 500.0;
    uint64_t lookup_instr_base = 4000;

    /**
     * Event-block size for the batched decide path: same-frame
     * events are generated in blocks of up to this many, handed to
     * Scheme::prepareBatch() (SNIP resolves its frozen index probes
     * type-grouped), then processed through the unchanged per-event
     * sequential stage. 0 uses the scheme's own batchBlock()
     * preference; 1 forces the scalar path. Sessions are
     * bitwise-identical at every setting: event generation consumes
     * the rng in the same order, and all state-dependent work stays
     * per-event.
     */
    uint32_t batch_block = 0;

    /**
     * Optional metrics sink (nullptr = observability off): lookup
     * hit/miss/byte counters, decide outcomes, erroneous-
     * shortcircuit classes, per-frame/event counts, and end-of-
     * session energy/rate gauges (`lookup.*`, `decide.*`,
     * `session.*` — see DESIGN.md). Counters are resolved once at
     * session start, so the disabled hot path costs one branch per
     * record point and allocates nothing. A Registry is single-
     * writer: concurrent sessions (core::ParallelRunner) must use
     * one Registry each and merge after the join.
     */
    obs::Registry *obs = nullptr;

    /**
     * Staged async runtime (off by default). With obs set, the
     * pipeline additionally exports per-stage occupancy, queue-
     * depth log2-histograms, and deadline-miss counters under
     * `pipeline.*`.
     */
    PipelineConfig pipeline;
};

/** Counters collected over one session. */
struct SessionStats {
    uint64_t events = 0;
    uint64_t shortcircuits = 0;

    /** Ground-truth handler instructions of all events. */
    uint64_t instr_total = 0;
    /** Instructions not executed thanks to the scheme. */
    uint64_t instr_skipped = 0;
    /** Ground-truth IP work of all events (work units). */
    double ip_work_total = 0.0;
    /** IP work not executed. */
    double ip_work_skipped = 0.0;

    /** Lookup volume. */
    uint64_t lookup_bytes = 0;
    uint64_t lookup_candidates = 0;
    /** Energy charged for lookups (J). */
    double lookup_energy_j = 0.0;

    /** Short-circuits whose outputs differed from ground truth. */
    uint64_t erroneous_shortcircuits = 0;
    uint64_t err_temp_only = 0;
    uint64_t err_history = 0;
    uint64_t err_extern = 0;
    /** Output-field error accounting (Fig. 12 metric). */
    uint64_t output_fields_total = 0;
    uint64_t output_fields_wrong = 0;

    /** Useless (no-op) events observed (ground truth). */
    uint64_t useless_events = 0;
    /** Instructions spent on useless events *after* the scheme. */
    uint64_t useless_instr_executed = 0;

    /** Instruction-weighted short-circuit coverage (Fig. 11b). */
    double coverageInstr() const;
    /** IP-work-weighted skip coverage (Max IP reporting). */
    double coverageIpWork() const;
    /** Erroneous output-field rate (Fig. 12 metric). */
    double errorFieldRate() const;
};

/** Everything a session produces. */
struct SessionResult {
    soc::EnergyReport report;
    SessionStats stats;
    /** Recorded event stream (when record_events). */
    trace::EventTrace trace;
};

/**
 * Run one session of @p game under @p scheme. The game is reset()
 * at session start; the Soc is constructed fresh.
 */
SessionResult runSession(games::Game &game, Scheme &scheme,
                         const SimulationConfig &cfg = {});

/**
 * Average whole-device power of an idle (pocketed) phone under the
 * same energy model — the Fig. 3 "idle" reference bar.
 */
util::Power idlePhonePower(const soc::EnergyModel &model);

}  // namespace core
}  // namespace snip

#endif  // SNIP_CORE_SIMULATION_H
