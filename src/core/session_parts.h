/**
 * @file
 * Internal decomposition of the session loop, shared by the
 * sequential runner (simulation.cc) and the staged pipeline runtime
 * (pipeline.cc). The split mirrors the live event path of a real
 * on-device daemon:
 *
 *   EventGen     — sensor-side event generation: draws the jittered
 *                  per-mix arrivals and the event objects, frame by
 *                  frame, in blocks. Owns the session rng and the
 *                  game's event-generation memory (Game::makeEvent
 *                  touches only genMem_/seq_/zipf caches — disjoint
 *                  from the handler state SessionBody mutates, which
 *                  is what lets the pipeline run the two on
 *                  different threads against one Game).
 *   SessionBody  — framework dispatch, scheme decision, handler
 *                  execution (or its short-circuit) and all SoC
 *                  charging/accounting. Owns the Soc, the stats and
 *                  the scheme; everything order-dependent lives
 *                  here, in delivery order.
 *
 * Both runners drive the exact same two objects through the exact
 * same call sequence, which is what makes the pipelined session
 * bitwise-identical to the sequential one by construction.
 */

#ifndef SNIP_CORE_SESSION_PARTS_H
#define SNIP_CORE_SESSION_PARTS_H

#include <array>
#include <vector>

#include "core/simulation.h"
#include "events/binder.h"
#include "events/sensor_manager.h"
#include "trace/recorder.h"
#include "util/rng.h"

namespace snip {
namespace core {
namespace detail {

/**
 * One unit of the delivery stream: either a block of same-frame
 * events (in time order) or a frame boundary. The probes fields are
 * the pipeline decide stage's payload; the sequential runner leaves
 * them untouched.
 */
struct GenItem {
    enum class Kind : uint8_t { Block, FrameEnd };
    Kind kind = Kind::Block;
    /** Block: the events, in delivery order. */
    std::vector<events::EventObject> events;
    /** FrameEnd: the frame boundary time and its advance delta. */
    double frame_end = 0.0;
    double dt = 0.0;
    /** Pipeline stage-2 payload (Scheme::resolveProbes output). */
    PreparedProbes probes;
    bool has_probes = false;
};

/**
 * The event-generation half of the session loop, as an iterator.
 * next() reproduces the sequential loop's generation order exactly:
 * per event, makeEvent() then the arrival-jitter draw, blocks
 * bounded by the frame, one FrameEnd item per frame (events first).
 * Generation never depends on handler processing, so the stream is
 * a pure function of (game params, seed, duration, block size).
 */
class EventGen
{
  public:
    /** @p game must already be reset(); @p block >= 1. */
    EventGen(games::Game &game, const SimulationConfig &cfg,
             uint32_t block);

    /**
     * Produce the next item into @p item (reusing its storage).
     * Returns false when the session's final frame has been
     * emitted.
     */
    bool next(GenItem &item);

  private:
    games::Game &game_;
    const SimulationConfig &cfg_;
    uint32_t block_;
    util::Rng rng_;
    /** Per-mix-entry next arrival times (jittered periodic). */
    std::vector<double> next_at_;
    double frame_dt_;
    double now_ = 0.0;
    double frame_end_ = 0.0;
    bool in_frame_ = false;
    bool done_ = false;
};

/**
 * The execution half: per-event dispatch/decide/charge and the
 * per-frame background load + IP sleep policy + SoC advance, plus
 * the end-of-session accounting. Single-owner: exactly one thread
 * may call into a SessionBody at a time (the pipeline pins it to
 * the exec stage's worker).
 */
class SessionBody
{
  public:
    SessionBody(games::Game &game, Scheme &scheme,
                const SimulationConfig &cfg);

    /** Deliver one event through the full path, in stream order. */
    void processEvent(const events::EventObject &ev);

    /** Frame boundary: background load, sleep policy, advance. */
    void frameEnd(double frame_end, double dt);

    /** End-of-session result + obs totals. Call exactly once. */
    SessionResult finalize();

  private:
    games::Game &game_;
    Scheme &scheme_;
    const SimulationConfig &cfg_;

    soc::Soc soc_;
    events::SensorManager sensorMgr_;
    events::BinderChannel binder_;
    trace::EventRecorder recorder_;
    SessionStats stats_;

    /** Per-IP last-use clock for the sleep policy. */
    std::array<double, soc::kNumIpKinds> ipLastUse_;

    /** Pre-resolved obs handles (null when observability is off). */
    struct ObsHandles {
        obs::Counter *events = nullptr;
        obs::Counter *frames = nullptr;
        obs::Counter *useless = nullptr;
        obs::Counter *lookups = nullptr;
        obs::Counter *hits = nullptr;
        obs::Counter *misses = nullptr;
        obs::Counter *bytes = nullptr;
        obs::Counter *candidates = nullptr;
        obs::Counter *shortcircuit = nullptr;
        obs::Counter *full = nullptr;
        obs::Counter *audited = nullptr;
        obs::Counter *err_sc = nullptr;
        obs::Counter *err_temp = nullptr;
        obs::Counter *err_hist = nullptr;
        obs::Counter *err_ext = nullptr;
        util::Log2Histogram *bytes_hist = nullptr;
    } oc_;
};

/**
 * The effective event-block size of a session: cfg.batch_block, or
 * the scheme's own preference (min 1) when unset.
 */
uint32_t effectiveBlock(const SimulationConfig &cfg,
                        const Scheme &scheme);

}  // namespace detail
}  // namespace core
}  // namespace snip

#endif  // SNIP_CORE_SESSION_PARTS_H
