/**
 * @file
 * Multi-session parallelism for the simulation harness. Every
 * session is an independent, fully-seeded unit of work (its own
 * Game, its own Scheme, its own Soc), so N sessions scale across N
 * cores with bitwise-identical per-session results regardless of
 * the worker count — workers only ever write their own result slot.
 *
 * Threading model (see DESIGN.md "Threading model"): shared-read
 * objects (profiles, schemas, const Games used only for schema /
 * params access, const MemoTables) may be referenced from any
 * worker; mutable objects (the session's Game, Scheme, Soc, and any
 * online-filled MemoTable) must be owned by exactly one task. The
 * factories in SessionSpec run *on the worker*, so everything they
 * construct is worker-owned by design.
 */

#ifndef SNIP_CORE_PARALLEL_RUNNER_H
#define SNIP_CORE_PARALLEL_RUNNER_H

#include <functional>
#include <vector>

#include "core/simulation.h"
#include "util/function_ref.h"

namespace snip {
namespace core {

/**
 * Worker count used when a runner is built with threads == 0:
 * the SNIP_THREADS environment variable when set (>= 1), otherwise
 * std::thread::hardware_concurrency(). (Alias for
 * util::defaultThreadCount() — the pool engine itself lives in
 * util/parallel.h so the ML layer's Shrink-phase parallelism can
 * share it without a core dependency.)
 */
unsigned defaultThreadCount();

/** One session to run: factories execute on the worker thread. */
struct SessionSpec {
    /** Build the (worker-owned) game instance. */
    std::function<std::unique_ptr<games::Game>()> make_game;
    /** Build the (worker-owned) scheme; receives the game. */
    std::function<std::unique_ptr<Scheme>(games::Game &)> make_scheme;
    /** Fully-seeded session config. */
    SimulationConfig cfg;
};

/** Fixed-size thread pool for independent simulation work. */
class ParallelRunner
{
  public:
    /** @param threads Worker count; 0 uses defaultThreadCount(). */
    explicit ParallelRunner(unsigned threads = 0);

    /** Worker count this runner uses. */
    unsigned threads() const { return threads_; }

    /**
     * Run fn(i) for every i in [0, n), distributing indices across
     * the workers. fn must only write state owned by index i (or
     * otherwise disjoint per index); under that contract results are
     * deterministic and identical to a serial loop. The callable is
     * borrowed, not copied (util::FunctionRef): it only needs to
     * stay alive for the duration of this call.
     */
    void forEach(size_t n, util::FunctionRef<void(size_t)> fn) const;

    /**
     * Run every spec as one session and return the results in spec
     * order. Deterministic: slot i only depends on specs[i].
     */
    std::vector<SessionResult>
    runSessions(const std::vector<SessionSpec> &specs) const;

    /**
     * Canonical per-session seed derivation: decorrelates session
     * @p index from @p base without ever colliding with the base
     * seed itself (index is offset before mixing).
     */
    static uint64_t sessionSeed(uint64_t base, uint64_t index);

  private:
    unsigned threads_;
};

}  // namespace core
}  // namespace snip

#endif  // SNIP_CORE_PARALLEL_RUNNER_H
