/**
 * @file
 * Quality-of-experience model for SNIP's tolerable errors
 * (paper §IV-B): a wrong Out.Temp value is a single-frame visual or
 * haptic glitch (< 16.7 ms at 60 fps), roughly an order of magnitude
 * below human visual reaction time (~190-250 ms [19]), so isolated
 * glitches are very unlikely to be perceived; corrupted
 * Out.History/Out.Extern writes, in contrast, change the game and
 * are always counted as experience-breaking. The paper defers a
 * user study; this model quantifies the same argument so benches
 * and the watchdog can report experience impact, not just field
 * error rates.
 */

#ifndef SNIP_CORE_QOE_H
#define SNIP_CORE_QOE_H

#include "core/simulation.h"

namespace snip {
namespace core {

/** Perceptibility model parameters. */
struct QoeModel {
    /** Display refresh interval (s) — glitch duration floor. */
    double frame_interval_s = 1.0 / 60.0;
    /** Median human visual reaction time (s), [19] in the paper. */
    double reaction_time_s = 0.19;
    /**
     * Probability a single-frame glitch is noticed, modeled as the
     * duration ratio capped at 1 (a glitch an entire reaction-time
     * long is certainly seen).
     */
    double glitchPerceptibility() const
    {
        double p = frame_interval_s / reaction_time_s;
        return p > 1.0 ? 1.0 : p;
    }
};

/** Experience impact of one session. */
struct QoeReport {
    /** Out.Temp-only erroneous short-circuits per minute. */
    double glitches_per_minute = 0.0;
    /** Expected *noticed* glitches per minute. */
    double perceptible_glitches_per_minute = 0.0;
    /** Gameplay-corrupting errors (history/extern) per minute. */
    double corruptions_per_minute = 0.0;
    /** True when the session meets the "almost error free" bar:
     *  no corruption and under one noticed glitch per minute. */
    bool acceptable = false;
};

/** Score a session's stats under the QoE model. */
QoeReport scoreQoe(const SessionStats &stats, util::Time session_s,
                   const QoeModel &model = {});

}  // namespace core
}  // namespace snip

#endif  // SNIP_CORE_QOE_H
