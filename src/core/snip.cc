#include "core/snip.h"

#include "ml/dataset.h"
#include "obs/span.h"
#include "util/logging.h"

namespace snip {
namespace core {

uint64_t
SnipModel::selectedBytes() const
{
    uint64_t total = 0;
    for (const auto &t : types)
        total += t.selection.selected_bytes;
    return total;
}

void
SnipModel::freeze()
{
    if (frozen)
        return;
    if (!table)
        util::panic("SnipModel::freeze: model has no table");
    frozen = table->freeze();
}

uint64_t
SnipModel::tableBytes() const
{
    if (frozen)
        return frozen->totalBytes();
    return table ? table->totalBytes() : 0;
}

void
SnipModel::recordTableStats(obs::Registry &reg) const
{
    if (frozen)
        frozen->recordStats(reg);
    else if (table)
        table->recordStats(reg);
}

SnipModel
buildSnipModel(const trace::Profile &profile, const games::Game &game,
               const SnipConfig &cfg)
{
    SnipModel model;
    model.game = profile.game;
    model.table = std::make_unique<MemoTable>(game.schema());
    obs::Span shrink_span(cfg.obs, "shrink");

    std::vector<events::FieldId> forced;
    for (const auto &name : cfg.overrides.force_keep) {
        events::FieldId fid = game.schema().find(name);
        if (fid == events::kInvalidField)
            util::fatal("developer override names unknown field '%s'",
                        name.c_str());
        forced.push_back(fid);
    }

    for (events::EventType t : profile.typesPresent()) {
        auto records = profile.ofType(t);
        if (records.size() < cfg.min_records_per_type) {
            util::warn("snip: %s has only %zu records of %s; leaving "
                       "type undeployed", profile.game.c_str(),
                       records.size(), events::eventTypeName(t));
            if (cfg.obs)
                cfg.obs->counter("shrink.types_skipped").add(1);
            continue;
        }
        ml::Dataset ds(std::move(records), game.schema());

        ml::SelectionConfig sel;
        sel.max_error = cfg.max_error;
        sel.max_conditional_error = cfg.max_conditional_error;
        sel.pfi.repeats = cfg.pfi_repeats;
        sel.pfi.seed = util::mixCombine(cfg.seed,
                                        static_cast<uint64_t>(t));
        sel.pfi.threads = cfg.threads;
        sel.obs = cfg.obs;
        for (events::FieldId fid : forced) {
            if (ds.columnOf(fid) != SIZE_MAX)
                sel.forced_keep.push_back(fid);
        }

        TypeModel tm;
        tm.type = t;
        tm.records = ds.numRows();
        tm.selection = ml::selectNecessaryInputs(ds, sel);
        model.table->setSelected(t, tm.selection.selected);
        model.types.push_back(std::move(tm));
        if (cfg.obs)
            cfg.obs->counter("shrink.types_deployed").add(1);
    }

    // Pre-fill the table from the profile (the OTA payload).
    for (const auto &rec : profile.records)
        model.table->insert(rec);
    if (cfg.obs)
        model.table->recordStats(*cfg.obs);
    return model;
}

}  // namespace core
}  // namespace snip
