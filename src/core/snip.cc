#include "core/snip.h"

#include <algorithm>
#include <cstring>

#include "ml/dataset.h"
#include "obs/span.h"
#include "util/crc32.h"
#include "util/logging.h"

namespace snip {
namespace core {

namespace {

/** Streaming CRC of @p n u64s through the view's residency hooks. */
uint32_t
crcOfU64(const ml::DatasetView &ds, const uint64_t *p, size_t n)
{
    size_t blk = std::max<size_t>(1, ds.streamBlockRows());
    uint32_t crc = 0;
    for (size_t base = 0; base < n; base += blk) {
        size_t m = std::min(blk, n - base);
        crc = util::crc32(p + base, m * sizeof(uint64_t), crc);
        ds.noteStreamed(m * sizeof(uint64_t));
    }
    return crc;
}

/**
 * Content digest of everything a type's selection outcome is a
 * function of: the dataset (per-column values + ids, labels,
 * weights) and the selection-relevant config. Equal keys imply a
 * cached TypeModel replays bit-identically.
 */
uint64_t
datasetKey(const ml::DatasetView &ds, events::EventType t,
           const SnipConfig &cfg,
           const std::vector<events::FieldId> &forced)
{
    size_t n = ds.numRows();
    uint64_t h = util::mixCombine(0x5112cac4eULL,
                                  static_cast<uint64_t>(t));
    h = util::mixCombine(h, static_cast<uint64_t>(n));
    uint64_t me, mce;
    std::memcpy(&me, &cfg.max_error, 8);
    std::memcpy(&mce, &cfg.max_conditional_error, 8);
    h = util::mixCombine(h, me);
    h = util::mixCombine(h, mce);
    h = util::mixCombine(h, static_cast<uint64_t>(cfg.pfi_repeats));
    h = util::mixCombine(h, cfg.seed);
    for (events::FieldId fid : forced)
        h = util::mixCombine(h, static_cast<uint64_t>(fid));
    h = util::mixCombine(h, crcOfU64(ds, ds.labelData(), n));
    h = util::mixCombine(h, crcOfU64(ds, ds.weightData(), n));
    h = util::mixCombine(h, static_cast<uint64_t>(ds.numFeatures()));
    for (size_t c = 0; c < ds.numFeatures(); ++c) {
        uint64_t ch = util::mixCombine(
            static_cast<uint64_t>(c),
            static_cast<uint64_t>(ds.featureField(c)));
        ch = util::mixCombine(ch, crcOfU64(ds, ds.columnData(c), n));
        h = util::mixCombine(h, ch);
    }
    return h ? h : 1;
}

/**
 * Selection for one event type over any DatasetView storage — the
 * single path both the in-memory and the out-of-core builds go
 * through. With cfg.caches set, an unchanged (dataset, config)
 * replays the cached TypeModel and skips selection entirely.
 */
TypeModel
selectForType(const ml::DatasetView &ds, events::EventType t,
              const SnipConfig &cfg,
              const std::vector<events::FieldId> &forced)
{
    ShrinkCaches::TypeCache *cache =
        cfg.caches ? &cfg.caches->types[static_cast<int>(t)]
                   : nullptr;
    uint64_t key = 0;
    if (cache) {
        key = datasetKey(ds, t, cfg, forced);
        if (cache->valid && cache->dataset_key == key) {
            if (cfg.obs)
                cfg.obs->counter("shrink.types_cached").add(1);
            return cache->model;
        }
    }

    ml::SelectionConfig sel;
    sel.max_error = cfg.max_error;
    sel.max_conditional_error = cfg.max_conditional_error;
    sel.pfi.repeats = cfg.pfi_repeats;
    sel.pfi.seed = util::mixCombine(cfg.seed,
                                    static_cast<uint64_t>(t));
    sel.pfi.threads = cfg.threads;
    sel.pfi.cache = cache ? &cache->pfi : nullptr;
    sel.obs = cfg.obs;
    for (events::FieldId fid : forced) {
        if (ds.columnOf(fid) != SIZE_MAX)
            sel.forced_keep.push_back(fid);
    }

    TypeModel tm;
    tm.type = t;
    tm.records = ds.numRows();
    tm.selection = ml::selectNecessaryInputs(ds, sel);
    if (cache) {
        cache->valid = true;
        cache->dataset_key = key;
        cache->model = tm;
    }
    return tm;
}

/** Resolve force-keep override names; fatal on unknown names. */
std::vector<events::FieldId>
resolveForced(const games::Game &game, const SnipConfig &cfg)
{
    std::vector<events::FieldId> forced;
    for (const auto &name : cfg.overrides.force_keep) {
        events::FieldId fid = game.schema().find(name);
        if (fid == events::kInvalidField)
            util::fatal("developer override names unknown field '%s'",
                        name.c_str());
        forced.push_back(fid);
    }
    return forced;
}

}  // namespace

uint64_t
SnipModel::selectedBytes() const
{
    uint64_t total = 0;
    for (const auto &t : types)
        total += t.selection.selected_bytes;
    return total;
}

void
SnipModel::freeze()
{
    if (frozen)
        return;
    if (!table)
        util::panic("SnipModel::freeze: model has no table");
    frozen = table->freeze();
}

uint64_t
SnipModel::tableBytes() const
{
    if (frozen)
        return frozen->totalBytes();
    return table ? table->totalBytes() : 0;
}

void
SnipModel::recordTableStats(obs::Registry &reg) const
{
    if (frozen)
        frozen->recordStats(reg);
    else if (table)
        table->recordStats(reg);
}

SnipModel
buildSnipModel(const trace::Profile &profile, const games::Game &game,
               const SnipConfig &cfg)
{
    SnipModel model;
    model.game = profile.game;
    model.table = std::make_unique<MemoTable>(game.schema());
    obs::Span shrink_span(cfg.obs, "shrink");

    std::vector<events::FieldId> forced = resolveForced(game, cfg);

    for (events::EventType t : profile.typesPresent()) {
        auto records = profile.ofType(t);
        if (records.size() < cfg.min_records_per_type) {
            util::warn("snip: %s has only %zu records of %s; leaving "
                       "type undeployed", profile.game.c_str(),
                       records.size(), events::eventTypeName(t));
            if (cfg.obs)
                cfg.obs->counter("shrink.types_skipped").add(1);
            continue;
        }
        ml::Dataset ds(std::move(records), game.schema());
        TypeModel tm = selectForType(ds, t, cfg, forced);
        model.table->setSelected(t, tm.selection.selected);
        model.types.push_back(std::move(tm));
        if (cfg.obs)
            cfg.obs->counter("shrink.types_deployed").add(1);
    }

    // Pre-fill the table from the profile (the OTA payload).
    for (const auto &rec : profile.records)
        model.table->insert(rec);
    if (cfg.obs)
        model.table->recordStats(*cfg.obs);
    return model;
}

util::Result<SnipModel>
buildSnipModel(std::shared_ptr<const trace::ColumnarLog> tlog,
               const games::Game &game, const SnipConfig &cfg,
               const ml::ChunkedConfig &chunked)
{
    if (!tlog)
        return util::Status::Error("snip: null trace");
    std::vector<events::EventType> ttypes = tlog->trainingTypes();
    if (ttypes.empty())
        return util::Status::Error(
            "snip: trace carries no training sections "
            "(re-record with `snip convert --training`)");

    SnipModel model;
    model.game = tlog->game();
    model.table = std::make_unique<MemoTable>(game.schema());
    obs::Span shrink_span(cfg.obs, "shrink");

    std::vector<events::FieldId> forced = resolveForced(game, cfg);

    // Every section gets a bounded-RSS view (prefill needs even the
    // undeployed types); selection runs only on types with evidence.
    std::vector<std::shared_ptr<const ml::ChunkedDataset>> views;
    views.reserve(ttypes.size());
    for (events::EventType t : ttypes) {
        auto dsr = ml::ChunkedDataset::attach(tlog, t, game.schema(),
                                              chunked);
        if (!dsr.ok())
            return dsr.status();
        const auto &ds = *dsr.value();
        views.push_back(dsr.value());
        if (ds.numRows() < cfg.min_records_per_type) {
            util::warn("snip: %s has only %zu records of %s; leaving "
                       "type undeployed", model.game.c_str(),
                       ds.numRows(), events::eventTypeName(t));
            if (cfg.obs)
                cfg.obs->counter("shrink.types_skipped").add(1);
            continue;
        }
        TypeModel tm = selectForType(ds, t, cfg, forced);
        model.table->setSelected(t, tm.selection.selected);
        model.types.push_back(std::move(tm));
        if (cfg.obs)
            cfg.obs->counter("shrink.types_deployed").add(1);
    }

    // Pre-fill grouped by type: MemoTable buckets per type and keeps
    // within-type insertion order, so this builds the same table as
    // the profile-order walk in the in-memory path.
    games::HandlerExecution rec;
    for (const auto &view : views) {
        size_t blk = view->streamBlockRows();
        size_t row_bytes = (view->numFeatures() + 2) * 8;
        for (size_t row = 0; row < view->numRows(); ++row) {
            view->materializeRecord(row, &rec);
            model.table->insert(rec);
            if ((row + 1) % blk == 0)
                view->noteStreamed(blk * row_bytes);
        }
    }
    if (cfg.obs)
        model.table->recordStats(*cfg.obs);
    return util::Result<SnipModel>(std::move(model));
}

}  // namespace core
}  // namespace snip
