/**
 * @file
 * The deployed SNIP lookup table (paper §V-B, "Using the lookup
 * table during execution"): per event type it keeps the PFI-selected
 * necessary input fields and a set of entries mapping observed
 * necessary-input values to memoized outputs.
 *
 * Runtime lookup follows the paper's mechanism: the table is indexed
 * by a hash of the *event-object* portion of the necessary inputs
 * (computable before any processing); every candidate entry under
 * that index is then compared against the freshly gathered values of
 * all its stored necessary fields. The scan volume (candidates x
 * entry size) is exactly the Fig. 11c overhead term.
 */

#ifndef SNIP_CORE_MEMO_TABLE_H
#define SNIP_CORE_MEMO_TABLE_H

#include <array>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "events/event.h"
#include "events/field.h"
#include "games/game.h"
#include "games/handler.h"

namespace snip {

namespace obs {
class Registry;
}  // namespace obs

namespace core {

class FrozenTable;

/** One memoized entry: necessary-input values -> outputs. */
struct MemoEntry {
    /** Stored necessary-field values (canonical id order). Fields
     *  the profiled execution did not read are simply not stored;
     *  comparison only checks stored fields. */
    std::vector<events::FieldValue> key_fields;
    /** Precomputed slot of each key field within the type's sorted
     *  selected set (parallel to key_fields). Lets lookup() compare
     *  against the gathered-value layout without per-field searches. */
    std::vector<uint32_t> key_slots;
    /** Memoized output writes. */
    std::vector<events::FieldValue> outputs;
    /** Entry payload size in bytes (keys + outputs). */
    uint32_t entry_bytes = 0;
};

/** Result of one runtime lookup. */
struct MemoLookup {
    bool hit = false;
    /** Entry that matched (valid when hit). */
    const MemoEntry *entry = nullptr;
    /** Candidate entries scanned under the event-hash index. */
    uint32_t candidates = 0;
    /** Total bytes gathered + compared during the scan. */
    uint64_t bytes_scanned = 0;
};

/**
 * Caller-owned reusable gather buffers. lookup() fills one slot per
 * selected field of the event's type (slot order == the sorted
 * selected set); reusing the scratch across calls makes the hit path
 * allocation-free after the first event of the largest type.
 */
struct LookupScratch {
    /** Gathered value per selected-field slot. */
    std::vector<uint64_t> values;
    /** Whether the slot's field was present/readable. */
    std::vector<uint8_t> present;
};

/** Per-game deployed lookup table. */
class MemoTable
{
  public:
    /**
     * Bind to a game's schema. The table keeps its own copy: models
     * built from a short-lived game (e.g. the federated builders)
     * must stay valid after that game is destroyed.
     */
    explicit MemoTable(const events::FieldSchema &schema);

    /**
     * Configure the necessary (selected) fields of one event type.
     * Must be called before inserting records of that type.
     */
    void setSelected(events::EventType type,
                     std::vector<events::FieldId> selected);

    /** Selected fields of a type (empty when unconfigured). */
    const std::vector<events::FieldId> &
    selected(events::EventType type) const;

    /** Sum of selected-field sizes for a type (bytes). */
    uint64_t selectedBytes(events::EventType type) const;

    /**
     * Insert (or refresh) an entry from a profiled/observed
     * execution: its inputs are projected onto the selected fields.
     * Duplicate keys keep the first-inserted outputs (the paper's
     * table is append-only between re-learns).
     */
    void insert(const games::HandlerExecution &rec);

    /**
     * Look up an event at runtime. Event-side values come from
     * @p ev; history-side values are read from @p game's live state.
     *
     * Thread safety: lookup() never mutates the table, so any number
     * of threads may look up concurrently on a shared const table
     * (each with its own scratch) as long as no thread insert()s or
     * clear()s. Hit accounting is the caller's job (the deploy-side
     * FrozenTable hands back an entry ordinal for a caller-owned
     * dense counter array; see frozen_table.h).
     */
    MemoLookup lookup(const events::EventObject &ev,
                      const games::Game &game,
                      LookupScratch &scratch) const;

    /** Convenience overload with a thread-local scratch. */
    MemoLookup lookup(const events::EventObject &ev,
                      const games::Game &game) const;

    /**
     * Freeze this table into its immutable deploy-side form (a
     * self-owning contiguous arena; see frozen_table.h). Pure and
     * deterministic over the canonical entry order; the build-side
     * table is unchanged.
     */
    std::shared_ptr<const FrozenTable> freeze() const;

    /** The schema copy this table is bound to. */
    const events::FieldSchema &schema() const { return schema_; }

    /**
     * Visit every entry of @p type in canonical order: buckets by
     * ascending event-subkey, entries in insertion order within a
     * bucket. The order is stable across serialize/deserialize
     * round-trips, which is what makes re-serialization
     * byte-identical (model_codec.h).
     */
    void visitEntries(
        events::EventType type,
        const std::function<void(uint64_t subkey,
                                 const MemoEntry &entry)> &fn) const;

    /**
     * Union another table's entries into this one (the server-side
     * federated merge). Entries are re-projected onto *this* table's
     * selected sets; duplicate keys keep the first-seen outputs,
     * matching insert()'s append-only semantics.
     */
    void mergeFrom(const MemoTable &other);

    /**
     * Export table shape as `table.*` gauges (entries, payload
     * bytes, selected bytes, configured types). Read-only; see
     * DESIGN.md for the metric namespace.
     */
    void recordStats(obs::Registry &reg) const;

    /** Number of entries across all types. */
    size_t entryCount() const;
    /** Entries of one type. */
    size_t entryCount(events::EventType type) const;
    /** Total table payload bytes (entries + per-entry header). */
    uint64_t totalBytes() const;

    /** Per-entry header/index overhead modeled (bytes). */
    static constexpr uint32_t kEntryHeaderBytes = 256;

    /** Drop all entries (the profiler's "clear the table" action). */
    void clear();

  private:
    struct TypeTable {
        std::vector<events::FieldId> selected;   // sorted
        std::vector<events::FieldId> selected_event;    // In.Event subset
        /** Per-slot In.Event flag (parallel to selected); lets
         *  lookup() gather without consulting the schema per field. */
        std::vector<uint8_t> selected_is_event;
        uint64_t selected_bytes = 0;
        /** Event-subkey hash -> candidate entries. */
        std::unordered_map<uint64_t, std::vector<MemoEntry>> buckets;
        size_t entries = 0;
        uint64_t bytes = 0;
    };

    uint64_t eventSubkey(const TypeTable &tt,
                         const std::vector<events::FieldValue> &fields)
        const;

    events::FieldSchema schema_;
    std::array<TypeTable, events::kNumEventTypes> types_;
};

}  // namespace core
}  // namespace snip

#endif  // SNIP_CORE_MEMO_TABLE_H
