#include "core/frozen_table.h"

#include <atomic>

#include <algorithm>
#include <cstring>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/rng.h"

namespace snip {
namespace core {

namespace {

/** Fixed arena header: magic, version, total_size, ntypes,
 *  total_entries, total_bytes. */
constexpr size_t kHeaderBytes = 32;
/** Per-type directory record: 4 u32 + 2 u64 scalars + 10 u32
 *  offsets (see writeArena for the field order). */
constexpr size_t kTypeRecBytes = 72;
/** Index slot: u64 subkey + u32 begin + u32 count. */
constexpr size_t kSlotBytes = 16;

/** Subkey memo geometry: 2^12 slots x 64 B = 256 KiB/scratch. */
constexpr unsigned kSubkeyMemoBits = 12;
constexpr size_t kSubkeyMemoSlots = size_t{1} << kSubkeyMemoBits;

uint32_t
readU32(const uint8_t *p)
{
    uint32_t v;
    std::memcpy(&v, p, 4);
    return v;
}

uint64_t
readU64(const uint8_t *p)
{
    uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
}

void
writeU32(uint8_t *p, uint32_t v)
{
    std::memcpy(p, &v, 4);
}

void
writeU64(uint8_t *p, uint64_t v)
{
    std::memcpy(p, &v, 8);
}

size_t
align8(size_t off)
{
    return (off + 7) & ~size_t{7};
}

/** One type's gathered build-side data, pre-layout. */
struct TypeBuild {
    int type = 0;
    std::vector<events::FieldId> selected;
    std::vector<uint8_t> is_event;
    uint64_t selected_bytes = 0;
    uint64_t type_bytes = 0;
    /** Canonical-order entries grouped into buckets. */
    std::vector<uint64_t> bucket_subkeys;
    std::vector<uint32_t> bucket_begin;
    std::vector<uint32_t> bucket_count;
    std::vector<uint32_t> key_off;  // prefix, [nentries + 1]
    std::vector<uint32_t> out_off;
    std::vector<uint32_t> key_slots;
    std::vector<uint64_t> key_values;
    std::vector<events::FieldId> out_ids;
    std::vector<uint64_t> out_values;
    std::vector<uint32_t> entry_bytes;
    uint32_t capacity = 0;
};

}  // namespace

std::shared_ptr<const FrozenTable>
FrozenTable::freeze(const MemoTable &table)
{
    const events::FieldSchema &schema = table.schema();

    std::vector<TypeBuild> builds;
    for (int t = 0; t < events::kNumEventTypes; ++t) {
        events::EventType type = static_cast<events::EventType>(t);
        const auto &selected = table.selected(type);
        if (selected.empty())
            continue;
        TypeBuild b;
        b.type = t;
        b.selected = selected;
        b.selected_bytes = table.selectedBytes(type);
        for (events::FieldId fid : selected) {
            const auto &d = schema.def(fid);
            b.is_event.push_back(
                d.side == events::FieldSide::Input &&
                d.in_cat == events::InputCategory::Event);
        }
        b.key_off.push_back(0);
        b.out_off.push_back(0);
        uint64_t prev_subkey = 0;
        uint32_t nentries = 0;
        table.visitEntries(type, [&](uint64_t subkey,
                                     const MemoEntry &e) {
            if (b.bucket_subkeys.empty() || subkey != prev_subkey) {
                b.bucket_subkeys.push_back(subkey);
                b.bucket_begin.push_back(nentries);
                b.bucket_count.push_back(0);
                prev_subkey = subkey;
            }
            ++b.bucket_count.back();
            for (size_t k = 0; k < e.key_fields.size(); ++k) {
                b.key_slots.push_back(e.key_slots[k]);
                b.key_values.push_back(e.key_fields[k].value);
            }
            for (const auto &fv : e.outputs) {
                b.out_ids.push_back(fv.id);
                b.out_values.push_back(fv.value);
            }
            b.key_off.push_back(
                static_cast<uint32_t>(b.key_slots.size()));
            b.out_off.push_back(
                static_cast<uint32_t>(b.out_ids.size()));
            b.entry_bytes.push_back(e.entry_bytes);
            b.type_bytes +=
                e.entry_bytes + MemoTable::kEntryHeaderBytes;
            ++nentries;
        });
        // Load factor <= 0.5: capacity = smallest power of two >=
        // max(4, 2 x buckets). Deterministic, so the arena is a pure
        // function of the canonical entry order.
        b.capacity = 4;
        while (b.capacity <
               2 * static_cast<uint32_t>(b.bucket_subkeys.size()))
            b.capacity <<= 1;
        builds.push_back(std::move(b));
    }

    // Pass 1: layout. Every u64 array lands on an 8-aligned offset
    // (the arena base itself is always 8-aligned in memory).
    size_t off = kHeaderBytes + builds.size() * kTypeRecBytes;
    struct TypeOffsets {
        uint32_t selected, flags, index, key_off, out_off, key_slots,
            key_values, out_ids, out_values, entry_bytes;
    };
    std::vector<TypeOffsets> offsets(builds.size());
    for (size_t i = 0; i < builds.size(); ++i) {
        const TypeBuild &b = builds[i];
        TypeOffsets &o = offsets[i];
        size_t nsel = b.selected.size();
        size_t ne = b.entry_bytes.size();
        o.selected = static_cast<uint32_t>(off);
        off += nsel * 4;
        o.flags = static_cast<uint32_t>(off);
        off = align8(off + nsel);
        o.index = static_cast<uint32_t>(off);
        off += static_cast<size_t>(b.capacity) * kSlotBytes;
        o.key_off = static_cast<uint32_t>(off);
        off += (ne + 1) * 4;
        o.out_off = static_cast<uint32_t>(off);
        off = align8(off + (ne + 1) * 4);
        o.key_values = static_cast<uint32_t>(off);
        off += b.key_values.size() * 8;
        o.out_values = static_cast<uint32_t>(off);
        off += b.out_values.size() * 8;
        o.key_slots = static_cast<uint32_t>(off);
        off += b.key_slots.size() * 4;
        o.out_ids = static_cast<uint32_t>(off);
        off += b.out_ids.size() * 4;
        o.entry_bytes = static_cast<uint32_t>(off);
        off = align8(off + ne * 4);
    }
    size_t total_size = off;

    // Pass 2: fill. u64-backed storage keeps the base 8-aligned.
    auto ft = std::shared_ptr<FrozenTable>(new FrozenTable());
    ft->owned_.assign((total_size + 7) / 8, 0);
    uint8_t *base = reinterpret_cast<uint8_t *>(ft->owned_.data());

    uint64_t total_entries = 0, total_bytes = 0;
    for (const TypeBuild &b : builds) {
        total_entries += b.entry_bytes.size();
        total_bytes += b.type_bytes;
    }
    writeU32(base + 0, kFrozenMagic);
    writeU32(base + 4, kFrozenVersion);
    writeU32(base + 8, static_cast<uint32_t>(total_size));
    writeU32(base + 12, static_cast<uint32_t>(builds.size()));
    writeU64(base + 16, total_entries);
    writeU64(base + 24, total_bytes);

    for (size_t i = 0; i < builds.size(); ++i) {
        const TypeBuild &b = builds[i];
        const TypeOffsets &o = offsets[i];
        uint8_t *rec = base + kHeaderBytes + i * kTypeRecBytes;
        writeU32(rec + 0, static_cast<uint32_t>(b.type));
        writeU32(rec + 4, static_cast<uint32_t>(b.selected.size()));
        writeU32(rec + 8, b.capacity);
        writeU32(rec + 12,
                 static_cast<uint32_t>(b.entry_bytes.size()));
        writeU64(rec + 16, b.selected_bytes);
        writeU64(rec + 24, b.type_bytes);
        writeU32(rec + 32, o.selected);
        writeU32(rec + 36, o.flags);
        writeU32(rec + 40, o.index);
        writeU32(rec + 44, o.key_off);
        writeU32(rec + 48, o.out_off);
        writeU32(rec + 52, o.key_slots);
        writeU32(rec + 56, o.key_values);
        writeU32(rec + 60, o.out_ids);
        writeU32(rec + 64, o.out_values);
        writeU32(rec + 68, o.entry_bytes);

        for (size_t k = 0; k < b.selected.size(); ++k) {
            writeU32(base + o.selected + k * 4, b.selected[k]);
            base[o.flags + k] = b.is_event[k];
        }
        // Buckets placed in ascending-subkey order with linear
        // probing: a deterministic function of the bucket set.
        uint32_t mask = b.capacity - 1;
        for (size_t bk = 0; bk < b.bucket_subkeys.size(); ++bk) {
            uint32_t slot =
                static_cast<uint32_t>(b.bucket_subkeys[bk]) & mask;
            while (readU32(base + o.index + slot * kSlotBytes + 12))
                slot = (slot + 1) & mask;
            uint8_t *s = base + o.index + slot * kSlotBytes;
            writeU64(s, b.bucket_subkeys[bk]);
            writeU32(s + 8, b.bucket_begin[bk]);
            writeU32(s + 12, b.bucket_count[bk]);
        }
        for (size_t k = 0; k < b.key_off.size(); ++k)
            writeU32(base + o.key_off + k * 4, b.key_off[k]);
        for (size_t k = 0; k < b.out_off.size(); ++k)
            writeU32(base + o.out_off + k * 4, b.out_off[k]);
        for (size_t k = 0; k < b.key_slots.size(); ++k)
            writeU32(base + o.key_slots + k * 4, b.key_slots[k]);
        for (size_t k = 0; k < b.key_values.size(); ++k)
            writeU64(base + o.key_values + k * 8, b.key_values[k]);
        for (size_t k = 0; k < b.out_ids.size(); ++k)
            writeU32(base + o.out_ids + k * 4, b.out_ids[k]);
        for (size_t k = 0; k < b.out_values.size(); ++k)
            writeU64(base + o.out_values + k * 8, b.out_values[k]);
        for (size_t k = 0; k < b.entry_bytes.size(); ++k)
            writeU32(base + o.entry_bytes + k * 4, b.entry_bytes[k]);
    }

    ft->data_ = base;
    ft->size_ = total_size;
    ft->schema_ = schema;
    util::Status st = ft->decode(schema);
    if (!st.ok())
        util::panic("FrozenTable::freeze produced an invalid arena: "
                    "%s", st.message().c_str());
    return ft;
}

util::Result<std::shared_ptr<const FrozenTable>>
FrozenTable::attach(const uint8_t *data, size_t size,
                    std::shared_ptr<const void> owner,
                    const events::FieldSchema &schema)
{
    auto ft = std::shared_ptr<FrozenTable>(new FrozenTable());
    if (reinterpret_cast<uintptr_t>(data) % 8 == 0) {
        ft->data_ = data;
        ft->size_ = size;
        ft->owner_ = std::move(owner);
    } else {
        // Misaligned backing buffer: one aligned copy, still no
        // per-entry work.
        ft->owned_.assign((size + 7) / 8, 0);
        std::memcpy(ft->owned_.data(), data, size);
        ft->data_ = reinterpret_cast<uint8_t *>(ft->owned_.data());
        ft->size_ = size;
    }
    ft->schema_ = schema;
    util::Status st = ft->decode(schema);
    if (!st.ok())
        return st;
    return util::Result<std::shared_ptr<const FrozenTable>>(
        std::shared_ptr<const FrozenTable>(std::move(ft)));
}

util::Status
FrozenTable::decode(const events::FieldSchema &schema)
{
    const uint8_t *base = data_;
    const size_t size = size_;
    if (size < kHeaderBytes)
        return util::Status::Error("frozen: truncated header");
    if (readU32(base) != kFrozenMagic)
        return util::Status::Errorf("frozen: bad magic 0x%08x",
                                    readU32(base));
    if (readU32(base + 4) != kFrozenVersion)
        return util::Status::Errorf("frozen: unsupported version %u",
                                    readU32(base + 4));
    if (readU32(base + 8) != size)
        return util::Status::Errorf(
            "frozen: arena size %u does not match section size %zu",
            readU32(base + 8), size);
    uint32_t ntypes = readU32(base + 12);
    if (ntypes > events::kNumEventTypes)
        return util::Status::Errorf("frozen: %u types out of range",
                                    ntypes);
    if (kHeaderBytes + static_cast<size_t>(ntypes) * kTypeRecBytes >
        size)
        return util::Status::Error("frozen: truncated directory");
    uint64_t total_entries = readU64(base + 16);
    uint64_t total_bytes = readU64(base + 24);

    // A span check: count elements of elem bytes at off, all inside
    // the arena and aligned for the typed view over them (the view
    // reinterprets the bytes directly, so misalignment would be UB).
    auto span = [&](uint64_t off, uint64_t count, uint64_t elem,
                    uint64_t align) {
        return off <= size && count <= (size - off) / elem &&
               off % align == 0;
    };

    uint64_t sum_entries = 0, sum_bytes = 0;
    int prev_type = -1;
    uint32_t entry_base = 0;
    for (uint32_t i = 0; i < ntypes; ++i) {
        const uint8_t *rec = base + kHeaderBytes + i * kTypeRecBytes;
        uint32_t type = readU32(rec + 0);
        if (type >= events::kNumEventTypes ||
            static_cast<int>(type) <= prev_type)
            return util::Status::Errorf(
                "frozen: bad or out-of-order type %u", type);
        prev_type = static_cast<int>(type);

        TypeView tv;
        tv.nselected = readU32(rec + 4);
        tv.capacity = readU32(rec + 8);
        tv.nentries = readU32(rec + 12);
        tv.selected_bytes = readU64(rec + 16);
        tv.type_bytes = readU64(rec + 24);
        tv.entry_base = entry_base;
        uint32_t o_selected = readU32(rec + 32);
        uint32_t o_flags = readU32(rec + 36);
        uint32_t o_index = readU32(rec + 40);
        uint32_t o_key_off = readU32(rec + 44);
        uint32_t o_out_off = readU32(rec + 48);
        uint32_t o_key_slots = readU32(rec + 52);
        uint32_t o_key_values = readU32(rec + 56);
        uint32_t o_out_ids = readU32(rec + 60);
        uint32_t o_out_values = readU32(rec + 64);
        uint32_t o_entry_bytes = readU32(rec + 68);

        if (tv.nselected == 0)
            return util::Status::Errorf(
                "frozen: type %u with empty selection", type);
        if (tv.capacity == 0 ||
            (tv.capacity & (tv.capacity - 1)) != 0)
            return util::Status::Errorf(
                "frozen: type %u index capacity %u not a power of "
                "two", type, tv.capacity);
        if (!span(o_selected, tv.nselected, 4, 4) ||
            !span(o_flags, tv.nselected, 1, 1) ||
            !span(o_index, tv.capacity, kSlotBytes, 8) ||
            !span(o_key_off, tv.nentries + 1ull, 4, 4) ||
            !span(o_out_off, tv.nentries + 1ull, 4, 4) ||
            !span(o_entry_bytes, tv.nentries, 4, 4))
            return util::Status::Errorf(
                "frozen: type %u arrays out of bounds", type);
        tv.selected = reinterpret_cast<const events::FieldId *>(
            base + o_selected);
        tv.is_event = base + o_flags;
        tv.index = base + o_index;
        tv.key_off =
            reinterpret_cast<const uint32_t *>(base + o_key_off);
        tv.out_off =
            reinterpret_cast<const uint32_t *>(base + o_out_off);
        tv.entry_bytes = reinterpret_cast<const uint32_t *>(
            base + o_entry_bytes);

        // Selected set: ascending input-side ids whose sizes sum to
        // selected_bytes, flags matching the schema's categories.
        events::FieldId prev = events::kInvalidField;
        uint64_t sel_bytes = 0;
        for (uint32_t k = 0; k < tv.nselected; ++k) {
            events::FieldId fid = tv.selected[k];
            if (fid >= schema.size())
                return util::Status::Errorf(
                    "frozen: selected id %u out of schema range",
                    fid);
            const auto &d = schema.def(fid);
            if (d.side != events::FieldSide::Input)
                return util::Status::Errorf(
                    "frozen: selected id %u not an input", fid);
            if (prev != events::kInvalidField && fid <= prev)
                return util::Status::Error(
                    "frozen: selected ids not strictly ascending");
            prev = fid;
            sel_bytes += d.size_bytes;
            bool is_event =
                d.in_cat == events::InputCategory::Event;
            if ((tv.is_event[k] != 0) != is_event)
                return util::Status::Errorf(
                    "frozen: selected id %u category flag mismatch",
                    fid);
        }
        if (sel_bytes != tv.selected_bytes)
            return util::Status::Errorf(
                "frozen: type %u selected_bytes mismatch", type);

        // Prefix-offset arrays: start at 0, nondecreasing; their
        // totals size the key/output arrays.
        if (tv.key_off[0] != 0 || tv.out_off[0] != 0)
            return util::Status::Error(
                "frozen: entry offsets do not start at 0");
        for (uint32_t e = 0; e < tv.nentries; ++e) {
            if (tv.key_off[e + 1] < tv.key_off[e] ||
                tv.out_off[e + 1] < tv.out_off[e])
                return util::Status::Error(
                    "frozen: entry offsets not monotonic");
        }
        uint32_t nkeys = tv.key_off[tv.nentries];
        uint32_t nouts = tv.out_off[tv.nentries];
        if (!span(o_key_slots, nkeys, 4, 4) ||
            !span(o_key_values, nkeys, 8, 8) ||
            !span(o_out_ids, nouts, 4, 4) ||
            !span(o_out_values, nouts, 8, 8))
            return util::Status::Errorf(
                "frozen: type %u entry storage out of bounds", type);
        tv.key_slots =
            reinterpret_cast<const uint32_t *>(base + o_key_slots);
        tv.key_values =
            reinterpret_cast<const uint64_t *>(base + o_key_values);
        tv.out_ids = reinterpret_cast<const events::FieldId *>(
            base + o_out_ids);
        tv.out_values =
            reinterpret_cast<const uint64_t *>(base + o_out_values);

        for (uint32_t k = 0; k < nkeys; ++k)
            if (tv.key_slots[k] >= tv.nselected)
                return util::Status::Error(
                    "frozen: key slot out of selected range");
        for (uint32_t k = 0; k < nouts; ++k) {
            events::FieldId fid = tv.out_ids[k];
            if (fid >= schema.size() ||
                schema.def(fid).side != events::FieldSide::Output)
                return util::Status::Errorf(
                    "frozen: bad output field id %u", fid);
        }

        // Index slots: occupied slots (count > 0) must point at
        // in-range entry runs that tile [0, nentries) exactly.
        uint64_t indexed = 0;
        for (uint32_t s = 0; s < tv.capacity; ++s) {
            const uint8_t *slot = tv.index + s * kSlotBytes;
            uint32_t begin = readU32(slot + 8);
            uint32_t count = readU32(slot + 12);
            if (count == 0)
                continue;
            ++tv.buckets;
            if (begin > tv.nentries ||
                count > tv.nentries - begin)
                return util::Status::Error(
                    "frozen: index slot out of entry range");
            indexed += count;
        }
        if (indexed != tv.nentries)
            return util::Status::Errorf(
                "frozen: type %u index covers %llu of %u entries",
                type, static_cast<unsigned long long>(indexed),
                tv.nentries);
        if (2ull * tv.buckets > tv.capacity)
            return util::Status::Errorf(
                "frozen: type %u index overloaded", type);

        uint64_t modeled = 0;
        for (uint32_t e = 0; e < tv.nentries; ++e)
            modeled +=
                tv.entry_bytes[e] + MemoTable::kEntryHeaderBytes;
        if (modeled != tv.type_bytes)
            return util::Status::Errorf(
                "frozen: type %u byte accounting mismatch", type);

        sum_entries += tv.nentries;
        sum_bytes += tv.type_bytes;
        if (sum_entries > UINT32_MAX)
            return util::Status::Error("frozen: entry count overflow");
        entry_base += tv.nentries;
        types_[type] = tv;
    }
    if (sum_entries != total_entries || sum_bytes != total_bytes)
        return util::Status::Error(
            "frozen: header totals mismatch");
    total_entries_ = total_entries;
    total_bytes_ = total_bytes;
    return util::Status::Ok();
}

uint64_t
FrozenTable::eventSubkey(
    const TypeView &tv,
    const std::vector<events::FieldValue> &fields) const
{
    // Must match MemoTable::eventSubkey bit for bit: same seed, same
    // presence-bit mixing, same ascending selected-event order.
    uint64_t h = 0xe4e27000ULL;
    for (uint32_t i = 0; i < tv.nselected; ++i) {
        if (!tv.is_event[i])
            continue;
        events::FieldId fid = tv.selected[i];
        const events::FieldValue *fv = events::findField(fields, fid);
        uint64_t present = fv ? 1 : 0;
        uint64_t v = fv ? fv->value : 0;
        h = util::mixCombine(
            h, util::mixCombine(fid, util::mixCombine(present, v)));
    }
    return h;
}

bool
FrozenTable::probe(const TypeView &tv, uint64_t subkey,
                   uint32_t *begin, uint32_t *count) const
{
    uint32_t mask = tv.capacity - 1;
    uint32_t i = static_cast<uint32_t>(subkey) & mask;
    for (uint32_t step = 0; step < tv.capacity; ++step) {
        const uint8_t *slot = tv.index + i * kSlotBytes;
        uint32_t c = readU32(slot + 12);
        if (c == 0)
            return false;
        if (readU64(slot) == subkey) {
            *begin = readU32(slot + 8);
            *count = c;
            return true;
        }
        i = (i + 1) & mask;
    }
    return false;  // crafted full index: bounded, clean miss
}

FrozenProbe
FrozenTable::probeEvent(const events::EventObject &ev) const
{
    const TypeView &tv = types_[static_cast<int>(ev.type)];
    FrozenProbe p;
    if (tv.nselected == 0)
        return p;
    uint64_t subkey = eventSubkey(tv, ev.fields);
    uint32_t begin = 0, count = 0;
    if (probe(tv, subkey, &begin, &count)) {
        p.begin = begin;
        p.count = count;
    }
    return p;
}

FrozenLookup
FrozenTable::finishLookup(const events::EventObject &ev,
                          const games::Game &game,
                          LookupScratch &scratch,
                          FrozenProbe pr) const
{
    const TypeView &tv = types_[static_cast<int>(ev.type)];
    FrozenLookup res;
    if (tv.nselected == 0)
        return res;

    // Same accounting as MemoTable::lookup: gathering the selected
    // inputs costs their size even when no candidates exist.
    res.bytes_scanned = tv.selected_bytes;
    if (pr.count == 0)
        return res;

    size_t n = tv.nselected;
    scratch.values.resize(n);
    scratch.present.resize(n);
    for (size_t i = 0; i < n; ++i) {
        events::FieldId fid = tv.selected[i];
        if (tv.is_event[i]) {
            const events::FieldValue *fv =
                events::findField(ev.fields, fid);
            scratch.present[i] = fv != nullptr;
            scratch.values[i] = fv ? fv->value : 0;
        } else {
            uint64_t v = 0;
            scratch.present[i] = game.gatherInputValue(fid, v);
            scratch.values[i] = v;
        }
    }

    // One adjacent run of entries; keys are flat parallel arrays.
    for (uint32_t e = pr.begin; e < pr.begin + pr.count; ++e) {
        ++res.candidates;
        res.bytes_scanned +=
            tv.entry_bytes[e] + MemoTable::kEntryHeaderBytes;
        bool match = true;
        for (uint32_t k = tv.key_off[e]; k < tv.key_off[e + 1];
             ++k) {
            uint32_t slot = tv.key_slots[k];
            if (!scratch.present[slot] ||
                scratch.values[slot] != tv.key_values[k]) {
                match = false;
                break;
            }
        }
        if (match) {
            res.hit = true;
            res.entry_ordinal = tv.entry_base + e;
            res.nout = tv.out_off[e + 1] - tv.out_off[e];
            res.out_ids = tv.out_ids + tv.out_off[e];
            res.out_values = tv.out_values + tv.out_off[e];
            return res;
        }
    }
    return res;
}

FrozenLookup
FrozenTable::lookup(const events::EventObject &ev,
                    const games::Game &game,
                    LookupScratch &scratch) const
{
    return finishLookup(ev, game, scratch, probeEvent(ev));
}

namespace {

/**
 * Stable counting sort of a block by event type: scratch.order holds
 * the event indices grouped by type, original order preserved within
 * a group; scratch.type_begin[t] .. [t + 1] is type t's range.
 */
void
groupByType(std::span<const events::EventObject> evs,
            BatchLookupScratch &scratch)
{
    std::array<uint32_t, events::kNumEventTypes> counts{};
    for (const auto &ev : evs)
        ++counts[static_cast<int>(ev.type)];
    uint32_t run = 0;
    std::array<uint32_t, events::kNumEventTypes> cursor{};
    scratch.type_begin.resize(events::kNumEventTypes + 1);
    for (int t = 0; t < events::kNumEventTypes; ++t) {
        scratch.type_begin[t] = run;
        cursor[t] = run;
        run += counts[t];
    }
    scratch.type_begin[events::kNumEventTypes] = run;
    scratch.order.resize(evs.size());
    for (uint32_t i = 0; i < evs.size(); ++i)
        scratch.order[cursor[static_cast<int>(evs[i].type)]++] = i;
}

}  // namespace

uint64_t
FrozenTable::nextTableId()
{
    static std::atomic<uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

bool
FrozenTable::probeGroup(std::span<const events::EventObject> evs,
                        int t, uint32_t gb, uint32_t ge,
                        std::span<FrozenProbe> out,
                        BatchLookupScratch &scratch) const
{
    // Canonical-layout fast path: events of one type almost always
    // carry the handler's field set sorted by id, so every selected
    // event field sits at a fixed position in ev.fields. The map of
    // those positions is cached in the scratch per type (layouts are
    // a property of the handler spec, so it rarely changes) and
    // rebuilt from the group's first event when the table id or the
    // first event's layout stops matching. Per event, the map is
    // trusted only when the field vector's id sequence is identical
    // to the one the map was built from — findField is a pure
    // function of the id sequence, so identical sequences resolve
    // every field to the mapped position, duplicates and all.
    // Anything else takes the generic findField walk — the subkey
    // is identical either way.
    const TypeView &tv = types_[t];
    if (scratch.group_maps.size() < events::kNumEventTypes)
        scratch.group_maps.resize(events::kNumEventTypes);
    BatchLookupScratch::GroupMap &gm = scratch.group_maps[t];
    const std::vector<events::FieldValue> &first =
        evs[scratch.order[gb]].fields;

    // Same id sequence the map was built from? Then findField
    // resolves every field id to the same position it did for the
    // map's source event, so the mapped positions are exactly the
    // ones the generic walk would use.
    auto verify = [&gm](const events::FieldValue *flds, size_t sz) {
        if (sz != gm.nf)
            return false;
        const events::FieldId *exp = gm.expected_ids.data();
        bool ok = true;
        for (uint32_t q = 0; q < gm.nf; ++q)
            ok &= flds[q].id == exp[q];
        return ok;
    };

    if (gm.table_id != id_ || !gm.layout_ok ||
        !verify(first.data(), first.size())) {
        gm.table_id = id_;
        gm.event_pos.clear();
        gm.event_fid.clear();
        gm.pos_by_slot.assign(tv.nselected, ~0u);
        gm.layout_ok = true;
        for (uint32_t i = 0; i < tv.nselected && gm.layout_ok;
             ++i) {
            if (!tv.is_event[i])
                continue;
            uint32_t p = 0;
            while (p < first.size() &&
                   first[p].id != tv.selected[i])
                ++p;
            if (p == first.size()) {
                gm.layout_ok = false;
            } else {
                gm.event_pos.push_back(p);
                gm.event_fid.push_back(tv.selected[i]);
                gm.pos_by_slot[i] = p;
            }
        }
        gm.nf = static_cast<uint32_t>(first.size());
        gm.expected_ids.resize(first.size());
        for (size_t q = 0; q < first.size(); ++q)
            gm.expected_ids[q] = first[q].id;
        // One memo tag per (table, field-map, width) so memo
        // entries written against another type — or another table,
        // whose cached probe ranges would be meaningless here —
        // can never alias.
        gm.tag = util::mixCombine(0x5b8f00ULL, id_);
        gm.tag = util::mixCombine(gm.tag, gm.event_pos.size());
        for (uint32_t fid : gm.event_fid)
            gm.tag = util::mixCombine(gm.tag, fid);
    }

    const bool layout_ok = gm.layout_ok;
    const uint32_t m = static_cast<uint32_t>(gm.event_pos.size());
    const uint32_t *event_pos = gm.event_pos.data();
    const uint32_t *event_fid = gm.event_fid.data();
    const uint64_t map_tag = gm.tag;

    // Canonical subkey for one field-vector known to hold its
    // selected fields at the mapped positions.
    auto canonSubkey = [&](const events::FieldValue *flds) {
        uint64_t h = 0xe4e27000ULL;
        for (uint32_t j = 0; j < m; ++j)
            h = util::mixCombine(
                h, util::mixCombine(
                       event_fid[j],
                       util::mixCombine(
                           1, flds[event_pos[j]].value)));
        return h;
    };

    // The subkey memo engages for canonical tuples of up to four
    // fields.
    const bool memoable = layout_ok && m <= 4;
    if (memoable && scratch.subkey_memo.empty())
        scratch.subkey_memo.resize(kSubkeyMemoSlots);


    // One fused pass: a memo hit yields the resolved probe
    // (probe(table, subkey) is a pure function of the
    // immutable arena, and the tag includes the table id, so a
    // cached range can never come from another table) — hit events
    // never touch the index at all. Only memo misses and
    // non-canonical events walk the index, and those are the
    // minority, so a prefetched second pass would mostly be
    // overhead.
    for (uint32_t cur = gb; cur < ge; ++cur) {
        uint32_t idx = scratch.order[cur];
        const std::vector<events::FieldValue> &flds =
            evs[idx].fields;
        bool fast = layout_ok && verify(flds.data(), flds.size());
        scratch.canon[idx] = fast;
        if (fast && memoable) {
            // Memoized path: fold the tuple into a slot index,
            // trust the cached result only on an exact tag + tuple
            // match.
            uint64_t vals[4] = {0, 0, 0, 0};
            uint64_t fold = map_tag;
            for (uint32_t j = 0; j < m; ++j) {
                vals[j] = flds[event_pos[j]].value;
                fold ^= vals[j] * 0x9e3779b97f4a7c15ULL +
                        (static_cast<uint64_t>(j) << 56);
            }
            fold *= 0xbf58476d1ce4e5b9ULL;
            BatchLookupScratch::SubkeyMemo &slot =
                scratch.subkey_memo[fold >> (64 - kSubkeyMemoBits)];
            if (slot.m == m && slot.tag == map_tag &&
                slot.vals[0] == vals[0] &&
                slot.vals[1] == vals[1] &&
                slot.vals[2] == vals[2] &&
                slot.vals[3] == vals[3]) {
                out[idx] = FrozenProbe{slot.begin, slot.count};
                continue;
            }
            uint64_t h = canonSubkey(flds.data());
            FrozenProbe p;
            uint32_t begin = 0, count = 0;
            if (probe(tv, h, &begin, &count)) {
                p.begin = begin;
                p.count = count;
            }
            slot.tag = map_tag;
            slot.vals[0] = vals[0];
            slot.vals[1] = vals[1];
            slot.vals[2] = vals[2];
            slot.vals[3] = vals[3];
            slot.subkey = h;
            slot.begin = p.begin;
            slot.count = p.count;
            slot.m = m;
            out[idx] = p;
            continue;
        }
        uint64_t h = fast ? canonSubkey(flds.data())
                          : eventSubkey(tv, flds);
        FrozenProbe p;
        uint32_t begin = 0, count = 0;
        if (probe(tv, h, &begin, &count)) {
            p.begin = begin;
            p.count = count;
        }
        out[idx] = p;
    }
    return layout_ok;
}

void
FrozenTable::probeBatch(std::span<const events::EventObject> evs,
                        std::span<FrozenProbe> out,
                        BatchLookupScratch &scratch) const
{
    groupByType(evs, scratch);
    scratch.canon.resize(evs.size());

    for (int t = 0; t < events::kNumEventTypes; ++t) {
        uint32_t gb = scratch.type_begin[t];
        uint32_t ge = scratch.type_begin[t + 1];
        if (gb == ge)
            continue;
        const TypeView &tv = types_[t];
        if (tv.nselected == 0) {
            for (uint32_t k = gb; k < ge; ++k)
                out[scratch.order[k]] = FrozenProbe{};
            continue;
        }
        probeGroup(evs, t, gb, ge, out, scratch);
    }
}

void
FrozenTable::lookupBatch(std::span<const events::EventObject> evs,
                         const games::Game &game,
                         std::span<FrozenLookup> out,
                         BatchLookupScratch &scratch) const
{
    groupByType(evs, scratch);
    scratch.canon.resize(evs.size());
    scratch.probes.resize(evs.size());

    for (int t = 0; t < events::kNumEventTypes; ++t) {
        uint32_t gb = scratch.type_begin[t];
        uint32_t ge = scratch.type_begin[t + 1];
        if (gb == ge)
            continue;
        const TypeView &tv = types_[t];
        if (tv.nselected == 0) {
            for (uint32_t k = gb; k < ge; ++k)
                out[scratch.order[k]] = FrozenLookup{};
            continue;
        }
        // One grouped pass per type: probe the group, then
        // finish it against the type's (possibly just rebuilt)
        // cached layout map.
        probeGroup(evs, t, gb, ge,
                   {scratch.probes.data(), scratch.probes.size()},
                   scratch);
        const uint32_t *pos_by_slot =
            scratch.group_maps[t].pos_by_slot.data();

        // Static-game-state contract: the non-event (history/extern)
        // input columns are the same for every event of the block,
        // so gather them once per type group.
        size_t n = tv.nselected;
        scratch.base_values.resize(n);
        scratch.base_present.resize(n);
        for (size_t i = 0; i < n; ++i) {
            if (tv.is_event[i]) {
                scratch.base_present[i] = 0;
                scratch.base_values[i] = 0;
            } else {
                uint64_t v = 0;
                scratch.base_present[i] =
                    game.gatherInputValue(tv.selected[i], v);
                scratch.base_values[i] = v;
            }
        }

        // Nearly every event's subkey finds a bucket (event-field
        // combos repeat; it's the history/extern keys that reject),
        // so the finish pass touches candidate key columns for
        // almost every event; prefetch them a few events ahead.
        scratch.gather.values.resize(n);
        scratch.gather.present.resize(n);
        for (uint32_t k = gb; k < ge; ++k) {
            uint32_t idx = scratch.order[k];
            if (k + 4 < ge) {
                FrozenProbe nx = scratch.probes[scratch.order[k + 4]];
                if (nx.count) {
                    uint32_t nkb = tv.key_off[nx.begin];
                    __builtin_prefetch(tv.key_slots + nkb);
                    __builtin_prefetch(tv.key_values + nkb);
                }
            }
            const events::EventObject &ev = evs[idx];
            FrozenLookup &res = out[idx];
            res = FrozenLookup{};
            res.bytes_scanned = tv.selected_bytes;
            FrozenProbe pr = scratch.probes[idx];
            if (pr.count == 0)
                continue;

            // Canonical events with a narrow bucket — the dominant
            // shape by far — compare per candidate with an early
            // break on the first mismatched key, reading event-side
            // keys straight from their mapped field positions.
            // Rejects usually cost one compare, exactly like the
            // scalar path. Wide buckets and deviant events take the
            // column-wise pass below instead: one flat sweep over
            // the bucket's adjacent key_slots/key_values columns
            // computes a match flag per stored key (no per-entry
            // control flow — the loop vectorizes), then each
            // candidate reduces its flag range.
            if (scratch.canon[idx] && pr.count <= 2) {
                const events::FieldValue *flds = ev.fields.data();
                for (uint32_t e = pr.begin; e < pr.begin + pr.count;
                     ++e) {
                    ++res.candidates;
                    res.bytes_scanned += tv.entry_bytes[e] +
                                         MemoTable::kEntryHeaderBytes;
                    bool match = true;
                    for (uint32_t k2 = tv.key_off[e];
                         k2 < tv.key_off[e + 1]; ++k2) {
                        uint32_t slot = tv.key_slots[k2];
                        uint32_t p = pos_by_slot[slot];
                        bool ok =
                            p != ~0u
                                ? flds[p].value == tv.key_values[k2]
                                : (scratch.base_present[slot] &&
                                   scratch.base_values[slot] ==
                                       tv.key_values[k2]);
                        if (!ok) {
                            match = false;
                            break;
                        }
                    }
                    if (match) {
                        res.hit = true;
                        res.entry_ordinal = tv.entry_base + e;
                        res.nout = tv.out_off[e + 1] - tv.out_off[e];
                        res.out_ids = tv.out_ids + tv.out_off[e];
                        res.out_values =
                            tv.out_values + tv.out_off[e];
                        break;
                    }
                }
                continue;
            }

            uint32_t kb = tv.key_off[pr.begin];
            uint32_t ke = tv.key_off[pr.begin + pr.count];
            scratch.keymatch.resize(ke - kb);
            if (scratch.canon[idx]) {
                const events::FieldValue *flds = ev.fields.data();
                for (uint32_t k2 = kb; k2 < ke; ++k2) {
                    uint32_t slot = tv.key_slots[k2];
                    uint32_t p = pos_by_slot[slot];
                    scratch.keymatch[k2 - kb] =
                        p != ~0u
                            ? flds[p].value == tv.key_values[k2]
                            : (scratch.base_present[slot] &&
                               scratch.base_values[slot] ==
                                   tv.key_values[k2]);
                }
            } else {
                std::copy(scratch.base_values.begin(),
                          scratch.base_values.end(),
                          scratch.gather.values.begin());
                std::copy(scratch.base_present.begin(),
                          scratch.base_present.end(),
                          scratch.gather.present.begin());
                for (size_t i = 0; i < n; ++i) {
                    if (!tv.is_event[i])
                        continue;
                    const events::FieldValue *fv = events::findField(
                        ev.fields, tv.selected[i]);
                    scratch.gather.present[i] = fv != nullptr;
                    scratch.gather.values[i] = fv ? fv->value : 0;
                }
                for (uint32_t k2 = kb; k2 < ke; ++k2) {
                    uint32_t slot = tv.key_slots[k2];
                    scratch.keymatch[k2 - kb] =
                        scratch.gather.present[slot] &&
                        scratch.gather.values[slot] ==
                            tv.key_values[k2];
                }
            }
            for (uint32_t e = pr.begin; e < pr.begin + pr.count;
                 ++e) {
                ++res.candidates;
                res.bytes_scanned +=
                    tv.entry_bytes[e] + MemoTable::kEntryHeaderBytes;
                uint8_t match = 1;
                for (uint32_t k2 = tv.key_off[e];
                     k2 < tv.key_off[e + 1]; ++k2)
                    match &= scratch.keymatch[k2 - kb];
                if (match) {
                    res.hit = true;
                    res.entry_ordinal = tv.entry_base + e;
                    res.nout = tv.out_off[e + 1] - tv.out_off[e];
                    res.out_ids = tv.out_ids + tv.out_off[e];
                    res.out_values = tv.out_values + tv.out_off[e];
                    break;
                }
            }
        }
    }
}

bool
FrozenTable::containsRecord(const games::HandlerExecution &rec) const
{
    const TypeView &tv = types_[static_cast<int>(rec.type)];
    if (tv.nselected == 0)
        return false;

    const std::vector<events::FieldValue> *inputs = &rec.inputs;
    std::vector<events::FieldValue> sorted_inputs;
    if (!std::is_sorted(rec.inputs.begin(), rec.inputs.end(),
                        [](const events::FieldValue &a,
                           const events::FieldValue &b) {
                            return a.id < b.id;
                        })) {
        sorted_inputs = rec.inputs;
        events::canonicalize(sorted_inputs);
        inputs = &sorted_inputs;
    }

    // Project onto the selected set exactly as MemoTable::insert
    // does, then compare against the bucket like its dedup check.
    std::vector<uint32_t> slots;
    std::vector<uint64_t> values;
    size_t si = 0;
    for (const auto &fv : *inputs) {
        while (si < tv.nselected && tv.selected[si] < fv.id)
            ++si;
        if (si < tv.nselected && tv.selected[si] == fv.id) {
            slots.push_back(static_cast<uint32_t>(si));
            values.push_back(fv.value);
        }
    }

    uint64_t subkey = eventSubkey(tv, *inputs);
    uint32_t begin = 0, count = 0;
    if (!probe(tv, subkey, &begin, &count))
        return false;
    for (uint32_t e = begin; e < begin + count; ++e) {
        uint32_t nk = tv.key_off[e + 1] - tv.key_off[e];
        if (nk != slots.size())
            continue;
        bool same = true;
        for (uint32_t k = 0; k < nk; ++k) {
            uint32_t off = tv.key_off[e] + k;
            if (tv.key_slots[off] != slots[k] ||
                tv.key_values[off] != values[k]) {
                same = false;
                break;
            }
        }
        if (same)
            return true;
    }
    return false;
}

void
FrozenTable::visitRecords(
    const std::function<void(const games::HandlerExecution &)> &fn)
    const
{
    for (int t = 0; t < events::kNumEventTypes; ++t) {
        const TypeView &tv = types_[t];
        if (tv.nselected == 0)
            continue;
        for (uint32_t e = 0; e < tv.nentries; ++e) {
            games::HandlerExecution rec;
            rec.type = static_cast<events::EventType>(t);
            for (uint32_t k = tv.key_off[e]; k < tv.key_off[e + 1];
                 ++k)
                rec.inputs.push_back(
                    {tv.selected[tv.key_slots[k]],
                     tv.key_values[k]});
            for (uint32_t k = tv.out_off[e]; k < tv.out_off[e + 1];
                 ++k)
                rec.outputs.push_back(
                    {tv.out_ids[k], tv.out_values[k]});
            fn(rec);
        }
    }
}

size_t
FrozenTable::entryCount(events::EventType type) const
{
    return types_[static_cast<int>(type)].nentries;
}

uint64_t
FrozenTable::selectedBytes(events::EventType type) const
{
    return types_[static_cast<int>(type)].selected_bytes;
}

std::vector<events::FieldId>
FrozenTable::selectedVector(events::EventType type) const
{
    const TypeView &tv = types_[static_cast<int>(type)];
    return std::vector<events::FieldId>(
        tv.selected, tv.selected + tv.nselected);
}

size_t
FrozenTable::maxSelected() const
{
    size_t n = 0;
    for (const auto &tv : types_)
        n = std::max<size_t>(n, tv.nselected);
    return n;
}

uint32_t
FrozenTable::indexCapacity(events::EventType type) const
{
    return types_[static_cast<int>(type)].capacity;
}

uint32_t
FrozenTable::bucketCount(events::EventType type) const
{
    return types_[static_cast<int>(type)].buckets;
}

double
FrozenTable::indexLoadFactor() const
{
    uint64_t used = 0, cap = 0;
    for (const auto &tv : types_) {
        if (tv.nselected == 0)
            continue;
        used += tv.buckets;
        cap += tv.capacity;
    }
    return cap ? static_cast<double>(used) /
                     static_cast<double>(cap)
               : 0.0;
}

void
FrozenTable::recordStats(obs::Registry &reg) const
{
    uint64_t selected_bytes = 0;
    uint64_t configured = 0;
    for (const auto &tv : types_) {
        if (tv.nselected == 0)
            continue;
        ++configured;
        selected_bytes += tv.selected_bytes;
    }
    reg.gauge("table.entries")
        .set(static_cast<double>(entryCount()));
    reg.gauge("table.bytes").set(static_cast<double>(totalBytes()));
    reg.gauge("table.selected_bytes")
        .set(static_cast<double>(selected_bytes));
    reg.gauge("table.types_configured")
        .set(static_cast<double>(configured));
    reg.gauge("table.layout").set(1.0);
    reg.gauge("table.index_load_factor").set(indexLoadFactor());
}

}  // namespace core
}  // namespace snip
