#include "core/qoe.h"

#include "util/logging.h"

namespace snip {
namespace core {

QoeReport
scoreQoe(const SessionStats &stats, util::Time session_s,
         const QoeModel &model)
{
    if (session_s <= 0)
        util::fatal("scoreQoe: non-positive session length %f",
                    session_s);
    double minutes = session_s / 60.0;
    QoeReport r;
    r.glitches_per_minute =
        static_cast<double>(stats.err_temp_only) / minutes;
    r.perceptible_glitches_per_minute =
        r.glitches_per_minute * model.glitchPerceptibility();
    r.corruptions_per_minute =
        static_cast<double>(stats.err_history + stats.err_extern) /
        minutes;
    r.acceptable = r.corruptions_per_minute == 0.0 &&
                   r.perceptible_glitches_per_minute < 1.0;
    return r;
}

}  // namespace core
}  // namespace snip
