#include "core/lookup_table.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"
#include "util/rng.h"

namespace snip {
namespace core {

NaiveTableAnalysis::NaiveTableAnalysis(const trace::Profile &profile,
                                       const events::FieldSchema &schema,
                                       size_t curve_points)
{
    rowInputBytes_ = schema.totalInputBytes();
    rowTotalBytes_ = rowInputBytes_ + schema.totalOutputBytes();

    uint64_t total_instr = profile.totalInstructions();
    if (total_instr == 0)
        util::fatal("NaiveTableAnalysis: empty profile");

    std::unordered_set<uint64_t> seen;
    uint64_t covered_instr = 0;
    size_t step = std::max<size_t>(1, profile.records.size() /
                                          std::max<size_t>(1,
                                                           curve_points));
    size_t i = 0;
    for (const auto &rec : profile.records) {
        uint64_t key = events::hashFields(rec.inputs);
        if (seen.count(key))
            covered_instr += rec.cpu_instructions;
        else
            seen.insert(key);
        if (++i % step == 0 || i == profile.records.size()) {
            CoveragePoint p;
            p.coverage = static_cast<double>(covered_instr) /
                         static_cast<double>(total_instr);
            p.entries = seen.size();
            p.input_bytes = p.entries * rowInputBytes_;
            p.input_output_bytes = p.entries * rowTotalBytes_;
            curve_.push_back(p);
        }
    }
}

double
NaiveTableAnalysis::finalCoverage() const
{
    return curve_.empty() ? 0.0 : curve_.back().coverage;
}

uint64_t
NaiveTableAnalysis::bytesForCoverage(double coverage) const
{
    for (const auto &p : curve_) {
        if (p.coverage >= coverage)
            return p.input_output_bytes;
    }
    return 0;
}

InEventTableResult
analyzeInEventTable(const trace::Profile &profile,
                    const events::FieldSchema &schema)
{
    InEventTableResult res;
    uint64_t total_instr = profile.totalInstructions();
    if (total_instr == 0)
        util::fatal("analyzeInEventTable: empty profile");

    struct KeyInfo {
        // Distinct output signatures with instruction weights and a
        // representative record index per signature.
        std::map<uint64_t, uint64_t> out_weight;
        std::map<uint64_t, size_t> out_repr;
        uint64_t in_event_bytes = 0;
        uint64_t max_output_bytes = 0;
    };
    std::unordered_map<uint64_t, KeyInfo> keys;

    // Pass 1: in record order, find which executions hit an
    // already-seen key (coverage / ambiguity accounting), while
    // building the per-key output statistics.
    uint64_t hit_instr = 0;
    uint64_t ambiguous_instr = 0;
    std::vector<uint64_t> rec_key(profile.records.size());
    std::vector<char> rec_hit(profile.records.size(), 0);

    for (size_t i = 0; i < profile.records.size(); ++i) {
        const auto &rec = profile.records[i];
        // Key: In.Event-category input fields only.
        uint64_t key = 0x13e4e27ULL +
                       static_cast<uint64_t>(rec.type) * 0x9e37ULL;
        uint64_t in_event_bytes = 0;
        for (const auto &fv : rec.inputs) {
            const auto &d = schema.def(fv.id);
            if (d.in_cat == events::InputCategory::Event) {
                key ^= util::mixCombine(fv.id, fv.value);
                in_event_bytes += d.size_bytes;
            }
        }
        rec_key[i] = key;
        auto it = keys.find(key);
        if (it != keys.end()) {
            hit_instr += rec.cpu_instructions;
            rec_hit[i] = 1;
            if (it->second.out_weight.size() > 1)
                ambiguous_instr += rec.cpu_instructions;
        }
        KeyInfo &ki = keys[key];
        uint64_t osig = events::hashFields(rec.outputs);
        ki.out_weight[osig] += rec.cpu_instructions;
        ki.out_repr.emplace(osig, i);
        ki.in_event_bytes = in_event_bytes;
        uint64_t out_bytes = 0;
        for (const auto &fv : rec.outputs)
            out_bytes += schema.def(fv.id).size_bytes;
        ki.max_output_bytes = std::max(ki.max_output_bytes, out_bytes);
    }

    // Pass 2: evaluate the final table's majority short-circuits on
    // every hit record.
    uint64_t err_hits = 0, hits = 0;
    uint64_t err_temp = 0, err_hist = 0, err_ext = 0;
    for (size_t i = 0; i < profile.records.size(); ++i) {
        if (!rec_hit[i])
            continue;
        ++hits;
        const auto &rec = profile.records[i];
        const KeyInfo &ki = keys[rec_key[i]];
        uint64_t best_sig = 0, best_w = 0;
        for (const auto &ow : ki.out_weight) {
            if (ow.second > best_w) {
                best_w = ow.second;
                best_sig = ow.first;
            }
        }
        uint64_t actual = events::hashFields(rec.outputs);
        if (actual == best_sig)
            continue;
        ++err_hits;
        size_t repr = ki.out_repr.at(best_sig);
        OutputDiff d = diffOutputs(profile.records[repr].outputs,
                                   rec.outputs, schema);
        if (d.wrong_extern)
            ++err_ext;
        else if (d.wrong_history)
            ++err_hist;
        else
            ++err_temp;
    }

    res.entries = keys.size();
    for (const auto &kv : keys)
        res.table_bytes +=
            kv.second.in_event_bytes + kv.second.max_output_bytes;
    res.naive_bytes =
        profile.records.size() *
        (schema.totalInputBytes() + schema.totalOutputBytes());
    res.coverage = static_cast<double>(hit_instr) /
                   static_cast<double>(total_instr);
    res.ambiguous = static_cast<double>(ambiguous_instr) /
                    static_cast<double>(total_instr);
    if (hits) {
        res.erroneous_hit_fraction =
            static_cast<double>(err_hits) / static_cast<double>(hits);
    }
    if (err_hits) {
        res.err_temp_only =
            static_cast<double>(err_temp) / static_cast<double>(err_hits);
        res.err_history =
            static_cast<double>(err_hist) / static_cast<double>(err_hits);
        res.err_extern =
            static_cast<double>(err_ext) / static_cast<double>(err_hits);
    }
    return res;
}

}  // namespace core
}  // namespace snip
