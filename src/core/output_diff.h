/**
 * @file
 * Output comparison: given the outputs a short-circuit applied and
 * the outputs full processing would have produced, classify the
 * damage by output category (paper §IV-B): wrong Out.Temp values
 * are tolerable glitches; wrong Out.History/Out.Extern corrupt
 * future executions.
 */

#ifndef SNIP_CORE_OUTPUT_DIFF_H
#define SNIP_CORE_OUTPUT_DIFF_H

#include <cstdint>
#include <vector>

#include "events/field.h"

namespace snip {
namespace core {

/** Field-level comparison of two output sets. */
struct OutputDiff {
    /** Output fields in the truth set (union with predicted). */
    uint32_t fields_total = 0;
    /** Fields whose value differs (or are missing on one side). */
    uint32_t fields_wrong = 0;
    uint32_t wrong_temp = 0;
    uint32_t wrong_history = 0;
    uint32_t wrong_extern = 0;

    bool anyWrong() const { return fields_wrong > 0; }
    /** All damage confined to Out.Temp (tolerable). */
    bool tempOnly() const
    {
        return fields_wrong > 0 && wrong_history == 0 &&
               wrong_extern == 0;
    }
};

/**
 * Compare @p applied against @p truth (both canonical id order).
 * A field present on only one side counts as wrong in its category.
 */
OutputDiff diffOutputs(const std::vector<events::FieldValue> &applied,
                       const std::vector<events::FieldValue> &truth,
                       const events::FieldSchema &schema);

}  // namespace core
}  // namespace snip

#endif  // SNIP_CORE_OUTPUT_DIFF_H
