#include "core/pipeline.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/session_parts.h"
#include "util/parallel.h"
#include "util/ring_buffer.h"
#include "util/task_pool.h"

namespace snip {
namespace core {

namespace {

using detail::GenItem;

/** Outcome of one non-blocking stage step. */
enum class Step : uint8_t {
    Worked,   ///< Processed one item (or produced one).
    Blocked,  ///< Input empty or output full; try again later.
    Done,     ///< Stage finished; its output queue is closed.
};

/** Consumer-side pop with the end-of-stream protocol. */
enum class Pop : uint8_t { Item, Empty, Closed };

Pop
popNext(util::StageQueue<GenItem> &q, GenItem &item)
{
    if (q.ring().tryPop(item))
        return Pop::Item;
    if (!q.closed())
        return Pop::Empty;
    // Closed was observed after empty: one more pop covers the
    // window where the producer pushed its final item between our
    // two loads (close() release-orders after the last push).
    return q.ring().tryPop(item) ? Pop::Item : Pop::Closed;
}

/**
 * Per-stage metric shard. Written only by the stage's owning worker
 * for the whole run; the coordinating thread merges the shards into
 * the session registry after the join.
 */
struct StageMetrics {
    uint64_t items = 0;
    uint64_t busy_ns = 0;
    uint64_t deadline_misses = 0;
    uint64_t blocked = 0;
    util::Log2Histogram queue_depth;
};

constexpr int kGen = 0;
constexpr int kDecide = 1;
constexpr int kExec = 2;
constexpr const char *kStageName[3] = {"gen", "decide", "exec"};

/** All run state; lives on the calling thread's stack for one run. */
class PipelineRun
{
  public:
    PipelineRun(games::Game &game, Scheme &scheme,
                const SimulationConfig &cfg)
        : scheme_(scheme), cfg_(cfg),
          gen_(game, cfg, detail::effectiveBlock(cfg, scheme)),
          body_(game, scheme, cfg),
          q01_(cfg.pipeline.queue_capacity),
          q12_(cfg.pipeline.queue_capacity),
          timed_(cfg.obs != nullptr ||
                 cfg.pipeline.stage_deadline_us > 0.0),
          deadline_ns_(cfg.pipeline.stage_deadline_us * 1e3)
    {
    }

    SessionResult run();

  private:
    Step stepGen();
    Step stepDecide();
    Step stepExec();
    Step step(int s);
    void workerLoop(unsigned w, unsigned W);
    void exportMetrics(uint64_t wall_ns, unsigned W);

    /**
     * Timing-controller bracket around one item of stage @p s:
     * invokes the test stall hook, runs @p fn, accumulates busy time
     * and checks the per-stage deadline. Clock reads are skipped
     * entirely when neither obs nor a deadline asked for them.
     */
    template <typename Fn>
    void
    timedItem(int s, Fn &&fn)
    {
        if (cfg_.pipeline.test_stall)
            cfg_.pipeline.test_stall(s, m_[s].items);
        if (!timed_) {
            fn();
        } else {
            auto t0 = std::chrono::steady_clock::now();
            fn();
            auto dt_ns = std::chrono::duration_cast<
                             std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
            m_[s].busy_ns += static_cast<uint64_t>(dt_ns);
            if (deadline_ns_ > 0.0 &&
                static_cast<double>(dt_ns) > deadline_ns_)
                ++m_[s].deadline_misses;
        }
        ++m_[s].items;
    }

    Scheme &scheme_;
    const SimulationConfig &cfg_;

    detail::EventGen gen_;
    detail::SessionBody body_;
    util::StageQueue<GenItem> q01_;  ///< gen → decide
    util::StageQueue<GenItem> q12_;  ///< decide → exec

    /** Stage-2 scratch: private to the decide worker. */
    BatchLookupScratch scratch_;

    const bool timed_;
    const double deadline_ns_;

    StageMetrics m_[3];
    /** Set once by the owning worker; read only by that worker. */
    bool stage_done_[3] = {false, false, false};

    /** First worker exception; peers wind down via abort_. */
    std::atomic<bool> abort_{false};
    std::mutex eptr_mu_;
    std::exception_ptr eptr_;
};

Step
PipelineRun::stepGen()
{
    // Sole producer of q01_: a not-full check here cannot be
    // invalidated before our push, so the push below never fails.
    if (q01_.ring().full()) {
        ++m_[kGen].blocked;
        return Step::Blocked;
    }
    GenItem item;
    bool more = false;
    timedItem(kGen, [&] { more = gen_.next(item); });
    if (!more) {
        --m_[kGen].items;  // counted by timedItem; nothing produced
        q01_.close();
        return Step::Done;
    }
    q01_.ring().tryPush(item);
    m_[kGen].queue_depth.add(
        static_cast<double>(q01_.ring().sizeApprox()));
    return Step::Worked;
}

Step
PipelineRun::stepDecide()
{
    if (q12_.ring().full()) {
        ++m_[kDecide].blocked;
        return Step::Blocked;
    }
    GenItem item;
    switch (popNext(q01_, item)) {
    case Pop::Empty:
        ++m_[kDecide].blocked;
        return Step::Blocked;
    case Pop::Closed:
        q12_.close();
        return Step::Done;
    case Pop::Item:
        break;
    }
    timedItem(kDecide, [&] {
        // Resolve the frozen-index probes for multi-event blocks,
        // mirroring the sequential runner's size-gated
        // prepareBatch(). Pure read of the immutable arena with
        // this stage's own scratch; adoption (the scheme mutation)
        // happens in delivery order on the exec stage.
        if (item.kind == GenItem::Kind::Block &&
            item.events.size() > 1)
            item.has_probes = scheme_.resolveProbes(
                {item.events.data(), item.events.size()},
                item.probes, scratch_);
    });
    q12_.ring().tryPush(item);
    m_[kDecide].queue_depth.add(
        static_cast<double>(q12_.ring().sizeApprox()));
    return Step::Worked;
}

Step
PipelineRun::stepExec()
{
    GenItem item;
    switch (popNext(q12_, item)) {
    case Pop::Empty:
        ++m_[kExec].blocked;
        return Step::Blocked;
    case Pop::Closed:
        return Step::Done;
    case Pop::Item:
        break;
    }
    m_[kExec].queue_depth.add(
        static_cast<double>(q12_.ring().sizeApprox()));
    timedItem(kExec, [&] {
        if (item.kind == GenItem::Kind::Block) {
            if (item.has_probes)
                scheme_.adoptProbes(std::move(item.probes));
            for (const auto &ev : item.events)
                body_.processEvent(ev);
        } else {
            body_.frameEnd(item.frame_end, item.dt);
        }
    });
    return Step::Worked;
}

Step
PipelineRun::step(int s)
{
    switch (s) {
    case kGen:
        return stepGen();
    case kDecide:
        return stepDecide();
    default:
        return stepExec();
    }
}

void
PipelineRun::workerLoop(unsigned w, unsigned W)
{
    try {
        for (;;) {
            if (abort_.load(std::memory_order_acquire))
                return;
            bool all_done = true;
            bool progressed = false;
            for (int s = 0; s < 3; ++s) {
                if (static_cast<unsigned>(s) % W != w ||
                    stage_done_[s])
                    continue;
                Step r = step(s);
                if (r == Step::Done)
                    stage_done_[s] = true;
                else
                    all_done = false;
                if (r == Step::Worked)
                    progressed = true;
            }
            if (all_done)
                return;
            if (!progressed)
                std::this_thread::yield();
        }
    } catch (...) {
        {
            std::lock_guard<std::mutex> lock(eptr_mu_);
            if (!eptr_)
                eptr_ = std::current_exception();
        }
        abort_.store(true, std::memory_order_release);
    }
}

void
PipelineRun::exportMetrics(uint64_t wall_ns, unsigned W)
{
    obs::Registry &r = *cfg_.obs;
    r.gauge("pipeline.workers").set(static_cast<double>(W));
    r.gauge("pipeline.queue_capacity")
        .set(static_cast<double>(q01_.ring().capacity()));
    for (int s = 0; s < 3; ++s) {
        std::string p = std::string("pipeline.stage.") +
                        kStageName[s] + ".";
        r.counter(p + "items").add(m_[s].items);
        r.counter(p + "busy_ns").add(m_[s].busy_ns);
        r.counter(p + "deadline_misses").add(m_[s].deadline_misses);
        r.counter(p + "blocked").add(m_[s].blocked);
        r.histogram(p + "queue_depth").merge(m_[s].queue_depth);
        r.gauge(p + "occupancy")
            .set(wall_ns ? static_cast<double>(m_[s].busy_ns) /
                               static_cast<double>(wall_ns)
                         : 0.0);
    }
}

SessionResult
PipelineRun::run()
{
    unsigned W =
        cfg_.pipeline.workers
            ? std::clamp(cfg_.pipeline.workers, 1u, 3u)
            : std::min(3u, util::defaultThreadCount());

    auto t0 = std::chrono::steady_clock::now();
    if (W == 1) {
        workerLoop(0, 1);
    } else {
        // Lease the extra stage workers from the process-wide task
        // pool instead of constructing threads per run(): the caller
        // is worker 0 and the lease guarantees workers 1..W-1 start
        // even when the pool is busy. Static stage -> worker
        // ownership (s % W == w) is untouched; lease.wait()'s
        // completion ordering publishes the workers' StageMetrics
        // writes before exportMetrics reads them.
        auto body = [this, W](unsigned i) { workerLoop(i + 1, W); };
        util::TaskPool::WorkerLease lease =
            util::TaskPool::instance().lease(W - 1, body);
        workerLoop(0, W);
        lease.wait();
    }
    auto wall_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());

    if (eptr_)
        std::rethrow_exception(eptr_);

    if (cfg_.obs)
        exportMetrics(wall_ns, W);
    return body_.finalize();
}

}  // namespace

Pipeline::Pipeline(games::Game &game, Scheme &scheme,
                   const SimulationConfig &cfg)
    : game_(game), scheme_(scheme), cfg_(cfg)
{
}

SessionResult
Pipeline::run()
{
    game_.reset();
    PipelineRun run(game_, scheme_, cfg_);
    return run.run();
}

}  // namespace core
}  // namespace snip
