/**
 * @file
 * The full Fig. 10 deployment flow with on-disk artifacts:
 *
 *   phone:  record event stream  ->  events.bin  (upload)
 *   cloud:  load events.bin, replay on emulator -> profile.bin
 *   cloud:  PFI selection -> necessary inputs + lookup table
 *   phone:  deploy table (OTA), play with SNIP
 *
 * Artifacts are written to a temp directory so you can inspect the
 * actual bytes that would cross the network.
 *
 * Build & run:  ./build/examples/profile_and_deploy [game]
 */

#include <cstdio>

#include "core/model_codec.h"
#include "core/simulation.h"
#include "core/snip.h"
#include "games/registry.h"
#include "trace/recorder.h"
#include "trace/trace_log.h"
#include "util/bytes.h"
#include "util/logging.h"
#include "util/units.h"

using namespace snip;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "candy_crush";
    std::string dir = "/tmp";
    std::string events_path = dir + "/snip_" + name + "_events.bin";
    std::string profile_path = dir + "/snip_" + name + "_profile.bin";
    std::string model_path = dir + "/snip_" + name + "_model.snpm";

    // --- Phone side: play & record -------------------------------
    auto game = games::makeGame(name);
    core::BaselineScheme baseline;
    core::SimulationConfig cfg;
    cfg.duration_s = 180.0;
    cfg.record_events = true;
    core::SessionResult res = core::runSession(*game, baseline, cfg);

    util::ByteBuffer ev_buf;
    trace::encodeEventTrace(res.trace, ev_buf);
    util::Status st = trace::saveBuffer(ev_buf, events_path);
    if (!st.ok())
        util::fatal("%s", st.message().c_str());
    std::printf("[phone] recorded %zu events -> %s (%s uploaded)\n",
                res.trace.events.size(), events_path.c_str(),
                util::formatSize(static_cast<double>(ev_buf.size()))
                    .c_str());

    // --- Cloud side: replay on the emulator ----------------------
    util::ByteBuffer ev_in;
    st = trace::loadBuffer(events_path, &ev_in);
    if (!st.ok())
        util::fatal("%s", st.message().c_str());
    trace::EventTrace uploaded;
    st = trace::decodeEventTrace(ev_in, &uploaded);
    if (!st.ok())
        util::fatal("corrupt upload: %s", st.message().c_str());
    auto emulator = games::makeGame(uploaded.game);
    trace::Profile profile =
        trace::Replayer::replay(uploaded, *emulator);

    util::ByteBuffer prof_buf;
    trace::encodeProfile(profile, prof_buf);
    st = trace::saveBuffer(prof_buf, profile_path);
    if (!st.ok())
        util::fatal("%s", st.message().c_str());
    std::printf("[cloud] replayed -> %zu full I/O records (%s on "
                "disk; a real device would need %s for the naive "
                "union-of-locations table)\n",
                profile.records.size(),
                util::formatSize(static_cast<double>(prof_buf.size()))
                    .c_str(),
                util::formatSize(static_cast<double>(
                                     profile.records.size() *
                                     emulator->schema()
                                         .totalInputBytes()))
                    .c_str());

    // --- Cloud side: PFI selection -------------------------------
    core::SnipConfig scfg;
    scfg.overrides.force_keep = game->params().recommended_overrides;
    core::SnipModel model =
        core::buildSnipModel(profile, *emulator, scfg);
    std::printf("[cloud] PFI selected necessary inputs per type:\n");
    for (const auto &t : model.types) {
        std::printf("  %-12s %3zu fields, %5llu B (wrong-hit %.2f%%, "
                    "holdout hit rate %.0f%%)\n",
                    events::eventTypeName(t.type),
                    t.selection.selected.size(),
                    static_cast<unsigned long long>(
                        t.selection.selected_bytes),
                    100.0 * t.selection.selected_error,
                    100.0 * t.selection.selected_hit_rate);
        for (events::FieldId fid : t.selection.selected)
            std::printf("      - %s\n",
                        emulator->schema().def(fid).name.c_str());
    }
    st = core::saveModel(model, model_path);
    if (!st.ok())
        util::fatal("%s", st.message().c_str());
    std::printf("[cloud] OTA payload: lookup table with %zu entries "
                "(%s wire) -> %s\n",
                model.table->entryCount(),
                util::formatSize(static_cast<double>(
                                     core::packedModelBytes(model)))
                    .c_str(),
                model_path.c_str());

    // --- Phone side: play with the deployed table ----------------
    // The phone runs the model that crossed the wire, not the
    // in-memory pointer; a corrupt package would be rejected here
    // and the phone would simply stay on baseline.
    util::Result<core::SnipModel> shipped =
        core::loadModel(model_path);
    if (!shipped.ok())
        util::fatal("rejected OTA package: %s",
                    shipped.status().message().c_str());
    core::SimulationConfig ecfg;
    ecfg.duration_s = 60.0;
    ecfg.seed = 7777;
    core::BaselineScheme base2;
    double e_base =
        core::runSession(*game, base2, ecfg).report.total();
    core::SnipScheme snip(shipped.value());
    core::SessionResult r = core::runSession(*game, snip, ecfg);
    std::printf("[phone] SNIP session: %.1f%% energy saved "
                "(%.1f%% of execution snipped, %.3f%% output fields "
                "wrong, %s compared per event)\n",
                100.0 * (1.0 - r.report.total() / e_base),
                100.0 * r.stats.coverageInstr(),
                100.0 * r.stats.errorFieldRate(),
                util::formatSize(static_cast<double>(
                                     r.stats.lookup_bytes) /
                                 static_cast<double>(r.stats.events))
                    .c_str());
    return 0;
}
