/**
 * @file
 * AR game walkthrough (the paper's Fig. 1 scenario): Chase Whisply
 * streams 30 camera frames per second through the sensor hub and
 * ISP while the user aims with gyro tilts and shoots with touches.
 * This example shows where the energy goes component by component,
 * how redundant the camera-driven event processing is, and what
 * SNIP does to it.
 *
 * Build & run:  ./build/examples/ar_game_session
 */

#include <cstdio>

#include "core/simulation.h"
#include "core/snip.h"
#include "games/registry.h"
#include "trace/field_stats.h"
#include "trace/recorder.h"
#include "util/table_printer.h"
#include "util/units.h"

using namespace snip;

int
main()
{
    auto game = games::makeGame("chase_whisply");
    std::printf("=== %s: AR session walkthrough ===\n\n",
                game->displayName().c_str());

    std::printf("event mix:\n");
    for (const auto &m : game->params().mix) {
        std::printf("  %-12s %5.1f events/s (%u B objects, %u raw "
                    "samples each)\n",
                    events::eventTypeName(m.type), m.rate_hz,
                    events::eventObjectBytes(m.type),
                    events::rawSamplesPerEvent(m.type));
    }

    core::BaselineScheme baseline;
    core::SimulationConfig cfg;
    cfg.duration_s = 120.0;
    cfg.record_events = true;
    core::SessionResult res = core::runSession(*game, baseline, cfg);

    std::printf("\nbaseline energy over %s (%s avg):\n",
                util::formatTime(res.report.elapsed()).c_str(),
                util::formatPower(res.report.averagePower()).c_str());
    for (const auto &c : res.report.components()) {
        if (c.total() < 0.5)
            continue;
        std::printf("  %-11s %10s  (%4.1f%% of device)\n",
                    c.name.c_str(),
                    util::formatEnergy(c.total()).c_str(),
                    100.0 * c.total() / res.report.total());
    }

    // Characterize the camera-frame redundancy the AR loop creates:
    // most frames re-detect the same plane in the same lighting.
    auto replica = games::makeGame("chase_whisply");
    trace::Profile profile =
        trace::Replayer::replay(res.trace, *replica);
    trace::FieldStatistics stats(profile, game->schema());
    auto cam = profile.ofType(events::EventType::CameraFrame);
    std::printf("\ncamera frames processed: %zu (%.0f%% of events)\n",
                cam.size(),
                100.0 * cam.size() / profile.records.size());
    std::printf("useless events: %.1f%%; output redundancy: %.1f%%\n",
                100.0 * stats.uselessFraction(),
                100.0 * stats.outputRedundancyFraction());

    // Deploy SNIP and watch the ISP/GPU work collapse.
    core::SnipConfig scfg;
    scfg.overrides.force_keep = game->params().recommended_overrides;
    core::SnipModel model =
        core::buildSnipModel(profile, *game, scfg);
    core::SimulationConfig ecfg;
    ecfg.duration_s = 60.0;
    ecfg.seed = 1234;

    core::BaselineScheme b2;
    core::SessionResult rb = core::runSession(*game, b2, ecfg);
    core::SnipScheme snip(model);
    core::SessionResult rs = core::runSession(*game, snip, ecfg);

    auto isp_j = [](const core::SessionResult &r) {
        for (const auto &c : r.report.components())
            if (c.name == "camera_isp")
                return c.total();
        return 0.0;
    };
    std::printf("\nwith SNIP (coverage %.1f%%):\n",
                100.0 * rs.stats.coverageInstr());
    std::printf("  device energy  %10s -> %10s  (%.1f%% saved)\n",
                util::formatEnergy(rb.report.total()).c_str(),
                util::formatEnergy(rs.report.total()).c_str(),
                100.0 * (1 - rs.report.total() / rb.report.total()));
    std::printf("  camera ISP     %10s -> %10s\n",
                util::formatEnergy(isp_j(rb)).c_str(),
                util::formatEnergy(isp_j(rs)).c_str());
    std::printf("  erroneous output fields: %.3f%%\n",
                100.0 * rs.stats.errorFieldRate());
    return 0;
}
