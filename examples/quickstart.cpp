/**
 * @file
 * Quickstart: the whole SNIP pipeline in ~50 lines.
 *
 *   1. Play a game (baseline) while recording its event stream.
 *   2. Replay the stream offline to build the full I/O profile.
 *   3. Run PFI feature selection and build the deployable table.
 *   4. Play again with SNIP short-circuiting and compare energy.
 *
 * Build & run:  ./build/examples/quickstart [game_name]
 */

#include <cstdio>

#include "core/simulation.h"
#include "core/snip.h"
#include "games/registry.h"
#include "trace/recorder.h"
#include "util/bytes.h"
#include "util/table_printer.h"
#include "util/units.h"

using namespace snip;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "ab_evolution";
    auto game = games::makeGame(name);
    std::printf("game: %s (%u input locations, %.0f events/s)\n",
                game->displayName().c_str(),
                static_cast<unsigned>(game->schema().size()),
                game->totalEventRate());

    // 1. Baseline session, recording the event stream on-device.
    core::BaselineScheme baseline;
    core::SimulationConfig profile_cfg;
    profile_cfg.duration_s = 180.0;
    profile_cfg.record_events = true;
    core::SessionResult base =
        core::runSession(*game, baseline, profile_cfg);
    std::printf("baseline: %s over %s (%s avg), %llu events\n",
                util::formatEnergy(base.report.total()).c_str(),
                util::formatTime(base.report.elapsed()).c_str(),
                util::formatPower(base.report.averagePower()).c_str(),
                static_cast<unsigned long long>(base.stats.events));

    // 2. Offline replay: the "cloud emulator" reconstructs every
    //    handler execution's full inputs and outputs.
    auto replica = games::makeGame(name);
    trace::Profile profile =
        trace::Replayer::replay(base.trace, *replica);
    std::printf("profile: %zu records replayed offline\n",
                profile.records.size());

    // 3. PFI selection + table construction.
    core::SnipConfig snip_cfg;
    snip_cfg.overrides.force_keep =
        game->params().recommended_overrides;
    core::SnipModel model =
        core::buildSnipModel(profile, *game, snip_cfg);
    std::printf("model: %zu event types deployed, necessary inputs "
                "%llu B of %llu B, table %s\n",
                model.types.size(),
                static_cast<unsigned long long>(model.selectedBytes()),
                static_cast<unsigned long long>(
                    game->schema().totalInputBytes()),
                util::formatSize(static_cast<double>(
                                     model.table->totalBytes()))
                    .c_str());

    // 4. Evaluate with SNIP against a fresh baseline session.
    core::SimulationConfig eval_cfg;
    eval_cfg.duration_s = 60.0;
    eval_cfg.seed = 0xeba1;
    core::BaselineScheme base2;
    double e_base = core::runSession(*game, base2, eval_cfg)
                        .report.total();
    core::SnipScheme snip(model);
    core::SessionResult res = core::runSession(*game, snip, eval_cfg);

    std::printf("\nSNIP: short-circuited %llu of %llu events "
                "(%.1f%% of execution), %.3f%% output fields wrong\n",
                static_cast<unsigned long long>(
                    res.stats.shortcircuits),
                static_cast<unsigned long long>(res.stats.events),
                100.0 * res.stats.coverageInstr(),
                100.0 * res.stats.errorFieldRate());
    std::printf("energy: %s -> %s  (%.1f%% saved)\n",
                util::formatEnergy(e_base).c_str(),
                util::formatEnergy(res.report.total()).c_str(),
                100.0 * (1.0 - res.report.total() / e_base));
    return 0;
}
