/**
 * @file
 * Continuous learning with a confidence gate (paper §V-B Option 2
 * and §VII-B): SNIP starts from an insufficient profile, but the
 * runtime withholds short-circuiting until the model's tested error
 * clears a threshold — so the user never experiences the bad early
 * epochs, while the cloud keeps re-learning from uploaded sessions.
 *
 * Build & run:  ./build/examples/continuous_learning_demo
 */

#include <cstdio>

#include "core/continuous_learning.h"
#include "games/registry.h"
#include "util/bytes.h"

using namespace snip;

namespace {

void
runVariant(const char *title, bool gated)
{
    auto game = games::makeGame("greenwall");
    auto replica = games::makeGame("greenwall");

    core::LearningConfig cfg;
    cfg.epochs = 20;
    cfg.session_s = 10.0;
    cfg.initial_profile_records = 24;
    cfg.snip.min_records_per_type = 8;
    cfg.confidence_gate = gated;
    cfg.gate_threshold = 0.004;

    core::ContinuousLearner learner(*game, *replica, cfg);
    auto epochs = learner.run();

    std::printf("%s\n", title);
    std::printf("epoch  deployed  err fields  coverage  profile\n");
    for (const auto &e : epochs) {
        if (e.epoch > 6 && e.epoch % 4 != 0 &&
            e.epoch != epochs.back().epoch)
            continue;
        std::printf("%5d  %-8s  %9.3f%%  %7.1f%%  %7zu\n", e.epoch,
                    e.deployed ? "yes" : "WAIT",
                    100.0 * e.error_field_rate, 100.0 * e.coverage,
                    e.profile_records);
    }
    double exposed = 0.0;
    for (const auto &e : epochs)
        exposed += e.error_field_rate;
    std::printf("cumulative user-visible error exposure: %.3f\n\n",
                exposed);
}

}  // namespace

int
main()
{
    runVariant("--- Option 2, no gate: users see the early errors ---",
               false);
    runVariant("--- Option 2 + confidence gate: short-circuiting "
               "held back until the model tests clean ---",
               true);
    std::printf("(the gate trades early coverage for a clean error "
                "profile — the paper's suggested deployment)\n");
    return 0;
}
