# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/soc_test[1]_include.cmake")
include("/root/repo/build/tests/events_test[1]_include.cmake")
include("/root/repo/build/tests/games_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
