
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/games/catalog.cc" "src/games/CMakeFiles/snip_games.dir/catalog.cc.o" "gcc" "src/games/CMakeFiles/snip_games.dir/catalog.cc.o.d"
  "/root/repo/src/games/game.cc" "src/games/CMakeFiles/snip_games.dir/game.cc.o" "gcc" "src/games/CMakeFiles/snip_games.dir/game.cc.o.d"
  "/root/repo/src/games/game_state.cc" "src/games/CMakeFiles/snip_games.dir/game_state.cc.o" "gcc" "src/games/CMakeFiles/snip_games.dir/game_state.cc.o.d"
  "/root/repo/src/games/handler.cc" "src/games/CMakeFiles/snip_games.dir/handler.cc.o" "gcc" "src/games/CMakeFiles/snip_games.dir/handler.cc.o.d"
  "/root/repo/src/games/registry.cc" "src/games/CMakeFiles/snip_games.dir/registry.cc.o" "gcc" "src/games/CMakeFiles/snip_games.dir/registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/snip_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/soc/CMakeFiles/snip_soc.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/events/CMakeFiles/snip_events.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
