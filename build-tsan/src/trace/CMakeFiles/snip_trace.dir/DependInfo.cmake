
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/field_stats.cc" "src/trace/CMakeFiles/snip_trace.dir/field_stats.cc.o" "gcc" "src/trace/CMakeFiles/snip_trace.dir/field_stats.cc.o.d"
  "/root/repo/src/trace/profile.cc" "src/trace/CMakeFiles/snip_trace.dir/profile.cc.o" "gcc" "src/trace/CMakeFiles/snip_trace.dir/profile.cc.o.d"
  "/root/repo/src/trace/recorder.cc" "src/trace/CMakeFiles/snip_trace.dir/recorder.cc.o" "gcc" "src/trace/CMakeFiles/snip_trace.dir/recorder.cc.o.d"
  "/root/repo/src/trace/trace_log.cc" "src/trace/CMakeFiles/snip_trace.dir/trace_log.cc.o" "gcc" "src/trace/CMakeFiles/snip_trace.dir/trace_log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/snip_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/soc/CMakeFiles/snip_soc.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/events/CMakeFiles/snip_events.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/games/CMakeFiles/snip_games.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
