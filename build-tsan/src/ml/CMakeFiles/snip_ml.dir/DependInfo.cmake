
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/dataset.cc" "src/ml/CMakeFiles/snip_ml.dir/dataset.cc.o" "gcc" "src/ml/CMakeFiles/snip_ml.dir/dataset.cc.o.d"
  "/root/repo/src/ml/decision_tree.cc" "src/ml/CMakeFiles/snip_ml.dir/decision_tree.cc.o" "gcc" "src/ml/CMakeFiles/snip_ml.dir/decision_tree.cc.o.d"
  "/root/repo/src/ml/feature_selection.cc" "src/ml/CMakeFiles/snip_ml.dir/feature_selection.cc.o" "gcc" "src/ml/CMakeFiles/snip_ml.dir/feature_selection.cc.o.d"
  "/root/repo/src/ml/pfi.cc" "src/ml/CMakeFiles/snip_ml.dir/pfi.cc.o" "gcc" "src/ml/CMakeFiles/snip_ml.dir/pfi.cc.o.d"
  "/root/repo/src/ml/random_forest.cc" "src/ml/CMakeFiles/snip_ml.dir/random_forest.cc.o" "gcc" "src/ml/CMakeFiles/snip_ml.dir/random_forest.cc.o.d"
  "/root/repo/src/ml/table_predictor.cc" "src/ml/CMakeFiles/snip_ml.dir/table_predictor.cc.o" "gcc" "src/ml/CMakeFiles/snip_ml.dir/table_predictor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/snip_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/events/CMakeFiles/snip_events.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/games/CMakeFiles/snip_games.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/soc/CMakeFiles/snip_soc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
