
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/events/binder.cc" "src/events/CMakeFiles/snip_events.dir/binder.cc.o" "gcc" "src/events/CMakeFiles/snip_events.dir/binder.cc.o.d"
  "/root/repo/src/events/event.cc" "src/events/CMakeFiles/snip_events.dir/event.cc.o" "gcc" "src/events/CMakeFiles/snip_events.dir/event.cc.o.d"
  "/root/repo/src/events/field.cc" "src/events/CMakeFiles/snip_events.dir/field.cc.o" "gcc" "src/events/CMakeFiles/snip_events.dir/field.cc.o.d"
  "/root/repo/src/events/sensor.cc" "src/events/CMakeFiles/snip_events.dir/sensor.cc.o" "gcc" "src/events/CMakeFiles/snip_events.dir/sensor.cc.o.d"
  "/root/repo/src/events/sensor_manager.cc" "src/events/CMakeFiles/snip_events.dir/sensor_manager.cc.o" "gcc" "src/events/CMakeFiles/snip_events.dir/sensor_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/snip_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/soc/CMakeFiles/snip_soc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
