# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/util_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/soc_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/events_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/games_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/trace_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/ml_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/core_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/integration_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/parallel_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/extensions_test[1]_include.cmake")
