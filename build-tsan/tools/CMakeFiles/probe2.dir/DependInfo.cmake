
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/probe2.cc" "tools/CMakeFiles/probe2.dir/probe2.cc.o" "gcc" "tools/CMakeFiles/probe2.dir/probe2.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/snip_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trace/CMakeFiles/snip_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ml/CMakeFiles/snip_ml.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/games/CMakeFiles/snip_games.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/events/CMakeFiles/snip_events.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/soc/CMakeFiles/snip_soc.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/snip_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
