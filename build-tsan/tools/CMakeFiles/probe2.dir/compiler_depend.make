# Empty compiler generated dependencies file for probe2.
# This may be replaced when dependencies are built.
