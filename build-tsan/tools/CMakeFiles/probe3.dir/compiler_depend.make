# Empty compiler generated dependencies file for probe3.
# This may be replaced when dependencies are built.
