# Empty compiler generated dependencies file for fig12_continuous_learning.
# This may be replaced when dependencies are built.
