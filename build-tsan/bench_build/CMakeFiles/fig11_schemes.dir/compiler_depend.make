# Empty compiler generated dependencies file for fig11_schemes.
# This may be replaced when dependencies are built.
