# Empty compiler generated dependencies file for ablation_pfi.
# This may be replaced when dependencies are built.
