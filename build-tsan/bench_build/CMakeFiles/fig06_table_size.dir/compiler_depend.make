# Empty compiler generated dependencies file for fig06_table_size.
# This may be replaced when dependencies are built.
