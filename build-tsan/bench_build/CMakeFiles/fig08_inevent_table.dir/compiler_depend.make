# Empty compiler generated dependencies file for fig08_inevent_table.
# This may be replaced when dependencies are built.
