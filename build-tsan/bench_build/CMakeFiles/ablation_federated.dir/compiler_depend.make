# Empty compiler generated dependencies file for ablation_federated.
# This may be replaced when dependencies are built.
