# Empty compiler generated dependencies file for micro_lookup.
# This may be replaced when dependencies are built.
