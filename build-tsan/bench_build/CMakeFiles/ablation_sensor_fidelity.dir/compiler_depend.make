# Empty compiler generated dependencies file for ablation_sensor_fidelity.
# This may be replaced when dependencies are built.
