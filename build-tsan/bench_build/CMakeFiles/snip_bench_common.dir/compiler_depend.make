# Empty compiler generated dependencies file for snip_bench_common.
# This may be replaced when dependencies are built.
