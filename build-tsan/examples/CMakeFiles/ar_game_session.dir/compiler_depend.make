# Empty compiler generated dependencies file for ar_game_session.
# This may be replaced when dependencies are built.
