# Empty compiler generated dependencies file for continuous_learning_demo.
# This may be replaced when dependencies are built.
